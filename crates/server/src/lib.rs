//! # server — a concurrent TCP snapshot server speaking `histql`
//!
//! Std-only. The default serving core ([`serve`] / [`serve_sharded`]) is
//! **event-driven**: one reactor thread multiplexes every connection over a
//! readiness poller (`epoll` on linux, `poll` elsewhere — see the `epoll`
//! shim crate) and a fixed worker pool executes parsed requests, so
//! thousands of mostly-idle connections cost file descriptors, not OS
//! threads. The original thread-per-connection core is still available
//! ([`serve_threaded`] / [`serve_sharded_threaded`]) as the benchmark
//! baseline. Framing, limits, refusal, and drain semantics are identical
//! between the two.
//!
//! All sessions share one [`ShardedGraphManager`] router (a single shard
//! when started through [`serve`]): snapshot computation runs under the
//! owning shard's read lock so retrievals proceed concurrently, while
//! `APPEND` takes only the tail shard's write lock — live events flow in
//! without contending with historical reads on other shards. Each
//! connection owns a [`histql::Executor`], whose sharded session releases
//! every overlay the connection created (on every shard it touched) when
//! it disconnects, so a dropped client can never leak GraphPool bits.
//!
//! Point retrievals are served through the shared snapshot cache (when the
//! [`SharedGraphManager`]'s manager was configured with one): sessions
//! asking for the same `(t, opts)` share one reference-counted pool
//! overlay, and `RELEASE ALL` / disconnect drop only the session's own
//! references. Hot `GET GRAPH AT` replies are additionally served through
//! the rendered-response byte cache (when configured), and concurrent
//! cache misses for the same `(t, opts, protocol)` are **coalesced**: a
//! single-flight table makes one session render while the rest wait and
//! share the framed bytes (see `histql::FlightTable`). `STATS SERVER`
//! reports the event core's connection, queue, and coalescing counters.
//!
//! Shutdown drains with a deadline ([`ServerHandle::shutdown_within`]):
//! idle sessions are closed immediately, in-flight requests get to finish,
//! and stragglers are force-closed when the deadline passes.
//!
//! ## Wire protocol
//!
//! Requests are single lines of `histql` (see the `histql` crate docs for
//! the grammar, and `docs/PROTOCOL.md` in the repository root for the full
//! protocol reference). Responses come in the session's current encoding:
//!
//! * **text** (the default) — one or more lines terminated by a lone `END`
//!   line; successful responses start with `OK`, failures with
//!   `ERR <message>`;
//! * **binary** (after `PROTOCOL BINARY`) — one length-prefixed frame of
//!   `tgraph::codec` bytes per response (see [`histql::Frame`]).
//!
//! Requests stay text lines in both modes; only responses switch. `QUIT`
//! closes the connection gracefully.
//!
//! ```text
//! C: GET GRAPH AT 6 WITH +node:name
//! S: OK GRAPH t=6 nodes=3 edges=2
//! S: N 1 name="alicia"
//! S: ...
//! S: END
//! ```

use std::io::{self, BufRead};
use std::net::SocketAddr;
use std::time::Duration;

use historygraph::{ShardedGraphManager, SharedGraphManager};

pub mod client;
mod event;
mod http;
mod threaded;

pub use client::Client;

/// Maximum accepted request-line length; longer lines get an error and the
/// connection is closed.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind; use port 0 for an ephemeral port.
    pub addr: String,
    /// Maximum simultaneously served connections; further clients are
    /// refused with `ERR server busy`.
    pub max_connections: usize,
    /// How long [`ServerHandle::shutdown`] waits for connections to finish
    /// on their own before force-closing the remaining (idle) sessions.
    pub drain_timeout: Duration,
    /// Worker threads executing requests in the event-driven core (clamped
    /// to at least 1; ignored by the threaded core, which spends a thread
    /// per connection instead).
    pub worker_threads: usize,
    /// Collect per-verb and per-phase latency histograms, path counters,
    /// and (when [`ServerConfig::slow_query_us`] is set) the slow-query
    /// log. On by default: the hot path costs a handful of relaxed atomic
    /// operations per request. `STATS METRICS` still answers when this is
    /// off — it reports only the pull-side counters (caches, single-flight,
    /// shards, connections), with no histograms.
    pub metrics_enabled: bool,
    /// Capture requests whose total time (queue wait + service) reaches
    /// this many microseconds into the slow-query ring, drained by `STATS
    /// SLOW`. `0` (the default) disables capture.
    pub slow_query_us: u64,
    /// Bind a plaintext HTTP scrape endpoint (`GET /metrics`, Prometheus
    /// exposition format) on this address — served off the reactor in the
    /// event core, a dedicated thread in the threaded core. `None` (the
    /// default) binds nothing.
    pub metrics_addr: Option<String>,
    /// Per-request deadline in milliseconds, covering queue wait plus
    /// service (event core only). A request whose deadline expires while it
    /// is still queued is refused with `ERR deadline exceeded` instead of
    /// executing; a request that overruns during service still gets its
    /// reply (aborting mid-execution could tear a session) but is counted.
    /// Both show up as `deadline_exceeded_total`. `0` (the default)
    /// disables the deadline.
    pub request_timeout_ms: u64,
    /// Admission cap on the worker queue (event core only). A request that
    /// arrives while this many requests are already queued is shed with
    /// `ERR overloaded` without taking a queue slot — the connection
    /// survives and may retry. Counted as `requests_shed_total`. `0` (the
    /// default) leaves admission unbounded.
    pub max_queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            drain_timeout: Duration::from_secs(5),
            worker_threads: 4,
            metrics_enabled: true,
            slow_query_us: 0,
            metrics_addr: None,
            request_timeout_ms: 0,
            max_queue_depth: 0,
        }
    }
}

enum HandleInner {
    Event(event::Core),
    Threaded(threaded::Core),
}

/// Handle to a running server; shuts it down (with a drain) on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    drain_timeout: Duration,
    inner: HandleInner,
}

impl ServerHandle {
    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP scrape-endpoint address, when
    /// [`ServerConfig::metrics_addr`] requested one.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Number of connections currently being served (including, in the
    /// event core, closed connections whose in-flight request has not yet
    /// returned from the worker pool — their overlays are still held).
    pub fn active_connections(&self) -> usize {
        match &self.inner {
            HandleInner::Event(core) => core.active(),
            HandleInner::Threaded(core) => core.active(),
        }
    }

    /// Stops accepting connections and drains the existing ones with the
    /// configured [`ServerConfig::drain_timeout`] deadline. See
    /// [`ServerHandle::shutdown_within`].
    pub fn shutdown(&mut self) {
        self.shutdown_within(self.drain_timeout);
    }

    /// Stops accepting connections, then drains with a deadline: idle
    /// sessions observe EOF at once, unwind, and release their pool
    /// overlays, while sessions with a request in flight finish their
    /// response in full before closing. Whatever still lingers after the
    /// deadline is force-closed. Returns once the server quiesced (bounded
    /// by a second deadline of the same length, so a wedged request cannot
    /// hang the caller forever).
    pub fn shutdown_within(&mut self, deadline: Duration) {
        match &mut self.inner {
            HandleInner::Event(core) => core.shutdown_within(deadline),
            HandleInner::Threaded(core) => core.shutdown_within(deadline),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts serving `shared` according to `config` on the event-driven core;
/// returns once the listener is bound, with the reactor and worker pool
/// running in background threads.
pub fn serve(shared: SharedGraphManager, config: ServerConfig) -> io::Result<ServerHandle> {
    serve_sharded(ShardedGraphManager::single(shared), config)
}

/// Starts serving a time-range-sharded store on the event-driven core:
/// every session's executor targets the router, so point queries land on
/// the shard owning their time, multipoint queries fan out across shards
/// in parallel, and `APPEND`s go to the tail shard without contending with
/// historical reads. A single-shard router behaves exactly like [`serve`].
pub fn serve_sharded(
    router: ShardedGraphManager,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let (addr, metrics_addr, core) = event::start(router, &config)?;
    Ok(ServerHandle {
        addr,
        metrics_addr,
        drain_timeout: config.drain_timeout,
        inner: HandleInner::Event(core),
    })
}

/// Starts serving on the original thread-per-connection core — the
/// baseline the event-driven core is benchmarked against. Same protocol,
/// limits, and drain semantics as [`serve`].
pub fn serve_threaded(
    shared: SharedGraphManager,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    serve_sharded_threaded(ShardedGraphManager::single(shared), config)
}

/// Sharded variant of [`serve_threaded`].
pub fn serve_sharded_threaded(
    router: ShardedGraphManager,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let (addr, metrics_addr, core) = threaded::start(router, &config)?;
    Ok(ServerHandle {
        addr,
        metrics_addr,
        drain_timeout: config.drain_timeout,
        inner: HandleInner::Threaded(core),
    })
}

/// Reads one `\n`-terminated line without buffering more than `max` bytes:
/// `Ok(None)` on a clean EOF, `Err(InvalidData)` when the cap is exceeded
/// (the line is abandoned unread). `read_line` alone would buffer an entire
/// newline-less stream into memory before any length check could run.
pub(crate) fn read_bounded_line(
    reader: &mut impl BufRead,
    line: &mut String,
    max: usize,
) -> io::Result<Option<()>> {
    line.clear();
    let mut bytes = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF: a non-empty unterminated tail still counts as a line.
            return Ok(if bytes.is_empty() {
                None
            } else {
                *line = String::from_utf8_lossy(&bytes).into_owned();
                Some(())
            });
        }
        let (chunk, found) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (&buf[..=i], true),
            None => (buf, false),
        };
        if bytes.len() + chunk.len() > max {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "line exceeds maximum length",
            ));
        }
        bytes.extend_from_slice(chunk);
        let consumed = chunk.len();
        reader.consume(consumed);
        if found {
            *line = String::from_utf8_lossy(&bytes).into_owned();
            return Ok(Some(()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use historygraph::{GraphManager, GraphManagerConfig};
    use std::io::{BufReader, Write};
    use std::thread;
    use std::time::Instant;
    use tgraph::{AttrOptions, Timestamp};

    fn start(max_connections: usize) -> (ServerHandle, SharedGraphManager) {
        let gm = GraphManager::build_in_memory(
            &datagen::toy_trace().events,
            GraphManagerConfig::default(),
        )
        .unwrap();
        let shared = SharedGraphManager::new(gm);
        let handle = serve(
            shared.clone(),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                max_connections,
                ..Default::default()
            },
        )
        .unwrap();
        (handle, shared)
    }

    #[test]
    fn round_trip_matches_direct_execution() {
        let (server, shared) = start(8);
        let mut client = Client::connect(server.addr()).unwrap();
        let lines = client
            .send("GET GRAPH AT 6 WITH +node:all+edge:all")
            .unwrap();
        let direct = shared
            .snapshot_at(Timestamp(6), &AttrOptions::all())
            .unwrap();
        let expected = histql::Response::Graph {
            t: Timestamp(6),
            graph: std::sync::Arc::new(direct),
        }
        .to_lines();
        assert_eq!(lines, expected);
    }

    #[test]
    fn binary_sessions_round_trip_and_can_switch_back() {
        let (server, shared) = start(8);
        let mut client = Client::connect(server.addr()).unwrap();
        client.binary().unwrap();
        let frame = client
            .send_binary("GET GRAPH AT 6 WITH +node:all+edge:all")
            .unwrap();
        let histql::Frame::Response(resp) = frame else {
            panic!("expected a response frame")
        };
        let direct = shared
            .snapshot_at(Timestamp(6), &AttrOptions::all())
            .unwrap();
        let expected = histql::Response::Graph {
            t: Timestamp(6),
            graph: std::sync::Arc::new(direct),
        };
        assert_eq!(resp.to_lines(), expected.to_lines());
        // Errors arrive as binary error frames, and the connection survives.
        match client.send_binary("FROB 12").unwrap() {
            histql::Frame::Error(msg) => assert!(msg.contains("unknown verb"), "{msg}"),
            other => panic!("expected an error frame, got {other:?}"),
        }
        // PROTOCOL TEXT acknowledges in text again.
        assert_eq!(
            client.send("PROTOCOL TEXT").unwrap(),
            vec!["OK PROTOCOL TEXT"]
        );
        assert_eq!(client.send("PING").unwrap(), vec!["OK PONG"]);
    }

    #[test]
    fn parse_errors_are_reported_not_fatal() {
        let (server, _shared) = start(8);
        let mut client = Client::connect(server.addr()).unwrap();
        let lines = client.send("FROB 12").unwrap();
        assert!(lines[0].starts_with("ERR "), "{lines:?}");
        // The connection survives an error.
        assert_eq!(client.send("PING").unwrap(), vec!["OK PONG"]);
    }

    #[test]
    fn connection_cap_refuses_excess_clients() {
        let (server, _shared) = start(2);
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        // Make sure both connections are fully established server-side.
        a.send("PING").unwrap();
        b.send("PING").unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        let lines = c.recv().unwrap();
        assert_eq!(lines, vec!["ERR server busy"]);
    }

    #[test]
    fn disconnect_releases_session_overlays() {
        let (server, shared) = start(8);
        {
            let mut client = Client::connect(server.addr()).unwrap();
            client.send("GET GRAPH AT 3").unwrap();
            client.send("GET GRAPHS AT 6, 9").unwrap();
            assert_eq!(shared.read().pool().active_overlay_count(), 3);
        }
        // The client dropped; its session must release all three overlays,
        // leaving only the current graph active.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let active = shared.read().pool().active_graphs().len();
            if active == 1 {
                assert_eq!(shared.read().pool().active_overlay_count(), 0);
                break;
            }
            assert!(Instant::now() < deadline, "overlays were not released");
            thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn bounded_line_reader_rejects_newline_less_floods() {
        use std::io::Cursor;
        let mut line = String::new();
        // A 1 MiB stream with no newline must be rejected once the cap is
        // exceeded, long before the whole stream is buffered.
        let flood = vec![b'a'; 1024 * 1024];
        let mut r = std::io::BufReader::new(Cursor::new(flood));
        let err = read_bounded_line(&mut r, &mut line, 4096).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Normal lines and EOF behave like read_line.
        let mut r = std::io::BufReader::new(Cursor::new(b"hello\nworld".to_vec()));
        assert!(read_bounded_line(&mut r, &mut line, 4096)
            .unwrap()
            .is_some());
        assert_eq!(line, "hello\n");
        assert!(read_bounded_line(&mut r, &mut line, 4096)
            .unwrap()
            .is_some());
        assert_eq!(line, "world");
        assert!(read_bounded_line(&mut r, &mut line, 4096)
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_request_line_is_refused() {
        let (server, _shared) = start(4);
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Stream well past the cap without ever sending a newline.
        let chunk = vec![b'9'; 8 * 1024];
        for _ in 0..((MAX_LINE_BYTES / chunk.len()) + 2) {
            if stream.write_all(&chunk).is_err() {
                break; // server already hung up, which is fine too
            }
        }
        let mut reply = String::new();
        let mut reader = BufReader::new(&stream);
        let _ = reader.read_line(&mut reply);
        assert!(
            reply.is_empty() || reply.starts_with("ERR request line too long"),
            "{reply:?}"
        );
    }

    #[test]
    fn shutdown_drains_idle_sessions_and_releases_their_overlays() {
        let (mut server, shared) = start(8);
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        a.send_ok("GET GRAPH AT 6").unwrap();
        b.send_ok("GET GRAPH AT 9").unwrap();
        assert_eq!(shared.read().pool().active_overlay_count(), 2);
        // Both clients now sit idle in a blocking read. A drain must not
        // wait out their 300 s read timeout: it closes them at the socket.
        let started = Instant::now();
        server.shutdown_within(Duration::from_secs(5));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "drain should close idle sessions well before the deadline"
        );
        assert_eq!(server.active_connections(), 0);
        // The force-closed sessions released their overlays on the way out.
        assert_eq!(shared.read().pool().active_overlay_count(), 0);
        // The clients observe the close as EOF/error, not a hang.
        assert!(a.send("PING").is_err());
        assert!(b.send("PING").is_err());
        // New connections are refused (nothing is listening any more).
        assert!(
            Client::connect(server.addr()).is_err()
                || Client::connect(server.addr())
                    .and_then(|mut c| c.send("PING"))
                    .is_err()
        );
    }

    #[test]
    fn shutdown_lets_an_in_flight_request_finish() {
        let (mut server, _shared) = start(8);
        let addr = server.addr();
        // One client keeps issuing requests while we drain: the drain must
        // not cut off a response mid-frame — the client either gets a full
        // OK..END response or a clean close.
        let worker = thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut completed = 0usize;
            loop {
                match c.send("GET GRAPH AT 6") {
                    Ok(lines) => {
                        assert!(lines[0].starts_with("OK GRAPH"), "{lines:?}");
                        completed += 1;
                    }
                    Err(_) => return completed, // drained
                }
            }
        });
        // Let the worker get going, then drain.
        thread::sleep(Duration::from_millis(50));
        server.shutdown_within(Duration::from_secs(5));
        let completed = worker.join().unwrap();
        assert!(completed > 0, "worker should have completed some requests");
        assert_eq!(server.active_connections(), 0);
    }

    fn start_sharded(shards: usize, max_connections: usize) -> (ServerHandle, ShardedGraphManager) {
        use tgraph::Event;
        // 60 nodes appearing at t = 1..=60 → three equal time ranges.
        let events = tgraph::EventList::from_events(
            (1..=60)
                .map(|i| Event::add_node(i, 1000 + i as u64))
                .collect(),
        );
        let router = ShardedGraphManager::build_in_memory(
            &events,
            historygraph::ShardedConfig::default()
                .with_shards(shards)
                .with_manager(historygraph::GraphManagerConfig::default().with_snapshot_cache(16)),
        )
        .unwrap();
        let handle = serve_sharded(
            router.clone(),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                max_connections,
                ..Default::default()
            },
        )
        .unwrap();
        (handle, router)
    }

    #[test]
    fn sharded_shutdown_drains_idle_sessions_across_shards() {
        let (mut server, router) = start_sharded(3, 8);
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        // Each session holds overlays on more than one shard.
        a.send_ok("GET GRAPHS AT 10, 50").unwrap();
        b.send_ok("GET GRAPH AT 30").unwrap();
        let overlays = |router: &ShardedGraphManager| -> usize {
            router.shard_infos().iter().map(|i| i.overlays).sum()
        };
        assert_eq!(overlays(&router), 3);
        let started = Instant::now();
        server.shutdown_within(Duration::from_secs(5));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "drain should close idle sharded sessions well before the deadline"
        );
        assert_eq!(server.active_connections(), 0);
        // Cached overlays keep only the cache's own reference; no session
        // references leak on any shard.
        for shared in router.shard_handles().unwrap() {
            let gm = shared.read();
            for entry in gm.cache_entries() {
                assert_eq!(entry.refs, 1, "session references must be released");
            }
        }
        assert!(a.send("PING").is_err());
        assert!(b.send("PING").is_err());
    }

    #[test]
    fn sharded_shutdown_lets_in_flight_multipoint_queries_finish() {
        let (mut server, _router) = start_sharded(3, 8);
        let addr = server.addr();
        // A worker keeps issuing cross-shard multipoint queries while we
        // drain: every accepted request must still get its complete,
        // request-ordered reply — never a truncated frame.
        let worker = thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut completed = 0usize;
            loop {
                match c.send("GET GRAPHS AT 55, 5, 35") {
                    Ok(lines) => {
                        assert!(lines[0].starts_with("OK GRAPHS count=3"), "{lines:?}");
                        let order: Vec<&str> = lines
                            .iter()
                            .filter(|l| l.starts_with("GRAPH t="))
                            .map(|l| l.split_whitespace().nth(1).unwrap())
                            .collect();
                        assert_eq!(order, ["t=55", "t=5", "t=35"], "request order broke");
                        completed += 1;
                    }
                    Err(_) => return completed, // drained
                }
            }
        });
        thread::sleep(Duration::from_millis(50));
        server.shutdown_within(Duration::from_secs(5));
        let completed = worker.join().unwrap();
        assert!(completed > 0, "worker should have completed some requests");
        assert_eq!(server.active_connections(), 0);
    }

    #[test]
    fn sharded_appends_interleave_with_historical_reads() {
        let (server, router) = start_sharded(3, 8);
        let addr = server.addr();
        let writer = thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for i in 0..20 {
                let lines = c
                    .send(&format!("APPEND NODE {} {}", 61 + i, 900 + i))
                    .unwrap();
                assert_eq!(lines, vec![format!("OK APPENDED t={}", 61 + i)]);
            }
        });
        let reader = thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for _ in 0..20 {
                let lines = c.send("GET GRAPH AT 10").unwrap();
                assert!(lines[0].starts_with("OK GRAPH t=10 nodes=10"), "{lines:?}");
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
        // Historical shards never saw an invalidation from the tail ingest.
        let infos = router.shard_infos();
        assert_eq!(infos[0].cache.invalidations, 0);
        assert_eq!(infos[1].cache.invalidations, 0);
    }

    #[test]
    fn appends_interleave_with_reads() {
        let (server, _shared) = start(8);
        let addr = server.addr();
        let writer = thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for i in 0..20 {
                let lines = c.send(&format!("APPEND NODE 20 {}", 900 + i)).unwrap();
                assert_eq!(lines, vec!["OK APPENDED t=20"]);
            }
        });
        let reader = thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for _ in 0..20 {
                let lines = c.send("GET GRAPH AT 6").unwrap();
                assert!(lines[0].starts_with("OK GRAPH t=6"), "{lines:?}");
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    }

    // --- threaded-core parity ---------------------------------------------

    fn start_threaded(max_connections: usize) -> (ServerHandle, SharedGraphManager) {
        let gm = GraphManager::build_in_memory(
            &datagen::toy_trace().events,
            GraphManagerConfig::default(),
        )
        .unwrap();
        let shared = SharedGraphManager::new(gm);
        let handle = serve_threaded(
            shared.clone(),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                max_connections,
                ..Default::default()
            },
        )
        .unwrap();
        (handle, shared)
    }

    #[test]
    fn threaded_core_round_trips_and_refuses_at_cap() {
        let (server, _shared) = start_threaded(2);
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        assert_eq!(a.send("PING").unwrap(), vec!["OK PONG"]);
        assert!(b.send("GET GRAPH AT 6").unwrap()[0].starts_with("OK GRAPH"));
        let mut c = Client::connect(server.addr()).unwrap();
        assert_eq!(c.recv().unwrap(), vec!["ERR server busy"]);
    }

    #[test]
    fn threaded_core_reports_real_server_stats() {
        let (server, _shared) = start_threaded(2);
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        a.send("PING").unwrap();
        b.send("PING").unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        assert_eq!(c.recv().unwrap(), vec!["ERR server busy"]);
        // Satellite parity: the threaded core reports real connection
        // counters; queue_depth and workers stay 0 (event-core-only — this
        // core has no worker queue).
        let lines = a.send("STATS SERVER").unwrap();
        assert_eq!(
            lines[0],
            "OK SERVER connections=2 accepted=2 rejected=1 queue_depth=0 workers=0"
        );
    }

    #[test]
    fn threaded_core_drains_idle_sessions() {
        let (mut server, shared) = start_threaded(8);
        let mut a = Client::connect(server.addr()).unwrap();
        a.send_ok("GET GRAPH AT 6").unwrap();
        assert_eq!(shared.read().pool().active_overlay_count(), 1);
        server.shutdown_within(Duration::from_secs(5));
        assert_eq!(server.active_connections(), 0);
        assert_eq!(shared.read().pool().active_overlay_count(), 0);
        assert!(a.send("PING").is_err());
    }
}
