//! The original thread-per-connection serving core, kept as the baseline
//! the event-driven core ([`crate::event`]) is benchmarked against
//! (`query_throughput --connections N --threaded`).
//!
//! One OS thread per accepted connection, blocking reads with a generous
//! timeout, and a connection registry so a draining shutdown can reach
//! sessions parked in a blocking read. Semantics are identical to the
//! event core: same framing, same `ERR server busy` refusal at the cap,
//! same drain behavior (idle sessions observe EOF immediately, in-flight
//! requests finish their response in full).

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use historygraph::ShardedGraphManager;
use histql::{frame_error, Executor, Response};

use crate::{read_bounded_line, ServerConfig, MAX_LINE_BYTES};

/// Registry of the streams behind live connections, so a draining shutdown
/// can reach sessions that sit idle in a blocking read.
#[derive(Default)]
struct ConnRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ConnRegistry {
    fn register(&self, stream: TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, stream);
        id
    }

    fn deregister(&self, id: u64) {
        self.streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
    }

    /// Shuts down the *read* half of every registered stream. A session
    /// parked in a blocking read observes EOF and exits cleanly; a session
    /// mid-request is untouched on the write side, so its in-flight
    /// response still goes out in full — there is no window in which an
    /// accepted request can lose its reply.
    fn shutdown_reads(&self) {
        let streams = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        for stream in streams.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }

    /// Closes every registered stream in both directions, mid-request or
    /// not — the force applied when the drain deadline passes.
    fn close_all(&self) {
        let streams = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        for stream in streams.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// The threaded serving core behind a [`crate::ServerHandle`].
pub(crate) struct Core {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    registry: Arc<ConnRegistry>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Core {
    pub(crate) fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    pub(crate) fn shutdown_within(&mut self, deadline: Duration) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.registry.shutdown_reads();
        if !self.await_quiesce(deadline) {
            self.registry.close_all();
            self.await_quiesce(deadline);
        }
    }

    /// Polls until no connection is active or `deadline` passes; `true` if
    /// the server quiesced.
    fn await_quiesce(&self, deadline: Duration) -> bool {
        let until = Instant::now() + deadline;
        while self.active.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= until {
                return false;
            }
            thread::sleep(Duration::from_millis(5));
        }
        true
    }
}

/// Starts the thread-per-connection accept loop; returns once the listener
/// is bound.
pub(crate) fn start(
    router: ShardedGraphManager,
    config: &ServerConfig,
) -> io::Result<(SocketAddr, Core)> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let registry = Arc::new(ConnRegistry::default());
    let max_connections = config.max_connections;

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active);
        let registry = Arc::clone(&registry);
        thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if active.load(Ordering::SeqCst) >= max_connections {
                    refuse(stream);
                    continue;
                }
                // A connection the registry cannot reach would be invisible
                // to the drain (shutdown would stall the full deadline and
                // still leave it running); refuse it instead. try_clone only
                // fails under fd exhaustion, where shedding load is the
                // right call anyway.
                let Ok(clone) = stream.try_clone() else {
                    refuse(stream);
                    continue;
                };
                active.fetch_add(1, Ordering::SeqCst);
                let conn_id = registry.register(clone);
                let guard = ConnGuard {
                    active: Arc::clone(&active),
                    registry: Arc::clone(&registry),
                    conn_id,
                };
                let router = router.clone();
                let shutdown = Arc::clone(&shutdown);
                thread::spawn(move || {
                    let _guard = guard;
                    // The executor's sharded session releases this
                    // connection's overlays on every shard when the thread
                    // ends, however it ends.
                    let mut executor = Executor::for_router(router);
                    let _ = serve_connection(stream, &mut executor, &shutdown);
                });
            }
        })
    };

    Ok((
        addr,
        Core {
            addr,
            shutdown,
            active,
            registry,
            accept_thread: Some(accept_thread),
        },
    ))
}

struct ConnGuard {
    active: Arc<AtomicUsize>,
    registry: Arc<ConnRegistry>,
    conn_id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.registry.deregister(self.conn_id);
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn refuse(stream: TcpStream) {
    let mut w = BufWriter::new(stream);
    let _ = w.write_all(b"ERR server busy\nEND\n");
    let _ = w.flush();
}

fn serve_connection(
    stream: TcpStream,
    executor: &mut Executor,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    // A generous read timeout so half-dead peers cannot pin a connection
    // slot forever.
    stream.set_read_timeout(Some(Duration::from_secs(300)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        // A draining shutdown shuts this socket's read half, which
        // surfaces here as EOF (or an error) — both paths drop the
        // executor and release the session's overlays.
        match read_bounded_line(&mut reader, &mut line, MAX_LINE_BYTES) {
            Ok(Some(())) => {}
            Ok(None) => return Ok(()), // client closed the connection
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                writer.write_all(&frame_error("request line too long", executor.protocol()))?;
                writer.flush()?;
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        if request.eq_ignore_ascii_case("QUIT") {
            // Handled outside the language; the goodbye honors the
            // session's current encoding.
            writer.write_all(&Response::Bye.to_frame(executor.protocol()))?;
            writer.flush()?;
            return Ok(());
        }
        // One complete reply frame — text lines + END or one binary frame —
        // rendered by the executor (or served pre-framed from the response
        // cache). Errors arrive already rendered as error frames.
        let reply = executor.execute_framed(request);
        writer.write_all(reply.as_ref())?;
        writer.flush()?;
        if shutdown.load(Ordering::SeqCst) {
            // Draining: the in-flight request got its response; close now.
            return Ok(());
        }
    }
}
