//! The original thread-per-connection serving core, kept as the baseline
//! the event-driven core ([`crate::event`]) is benchmarked against
//! (`query_throughput --connections N --threaded`).
//!
//! One OS thread per accepted connection, blocking reads with a generous
//! timeout, and a connection registry so a draining shutdown can reach
//! sessions parked in a blocking read. Semantics are identical to the
//! event core: same framing, same `ERR server busy` refusal at the cap,
//! same drain behavior (idle sessions observe EOF immediately, in-flight
//! requests finish their response in full), and the same observability
//! surface — `STATS SERVER` / `STATS METRICS` report real connection
//! counters here too, with `queue_depth` and `workers` pinned at 0 (this
//! core has no worker queue; `path_worker_total` counts its connection
//! threads instead). The optional `GET /metrics` scrape endpoint runs on
//! a dedicated blocking thread rather than sharing a reactor.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use historygraph::ShardedGraphManager;
use histql::{
    frame_error, metrics_report, render_prometheus, Executor, FlightTable, MetricsHub, Response,
    ServerStats,
};

use crate::{http, read_bounded_line, ServerConfig, MAX_LINE_BYTES};

/// Registry of the streams behind live connections, so a draining shutdown
/// can reach sessions that sit idle in a blocking read.
#[derive(Default)]
struct ConnRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

impl ConnRegistry {
    fn register(&self, stream: TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, stream);
        id
    }

    fn deregister(&self, id: u64) {
        self.streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
    }

    /// Shuts down the *read* half of every registered stream. A session
    /// parked in a blocking read observes EOF and exits cleanly; a session
    /// mid-request is untouched on the write side, so its in-flight
    /// response still goes out in full — there is no window in which an
    /// accepted request can lose its reply.
    fn shutdown_reads(&self) {
        let streams = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        for stream in streams.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }

    /// Closes every registered stream in both directions, mid-request or
    /// not — the force applied when the drain deadline passes.
    fn close_all(&self) {
        let streams = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        for stream in streams.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// The threaded serving core behind a [`crate::ServerHandle`].
pub(crate) struct Core {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    registry: Arc<ConnRegistry>,
    accept_thread: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
}

impl Core {
    pub(crate) fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    pub(crate) fn shutdown_within(&mut self, deadline: Duration) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accepts with throwaway connections.
        let _ = TcpStream::connect(self.addr);
        if let Some(addr) = self.metrics_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.metrics_thread.take() {
            let _ = t.join();
        }
        self.registry.shutdown_reads();
        if !self.await_quiesce(deadline) {
            self.registry.close_all();
            self.await_quiesce(deadline);
        }
    }

    /// Polls until no connection is active or `deadline` passes; `true` if
    /// the server quiesced.
    fn await_quiesce(&self, deadline: Duration) -> bool {
        let until = Instant::now() + deadline;
        while self.active.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= until {
                return false;
            }
            thread::sleep(Duration::from_millis(5));
        }
        true
    }
}

/// Starts the thread-per-connection accept loop; returns once the listener
/// is bound.
pub(crate) fn start(
    router: ShardedGraphManager,
    config: &ServerConfig,
) -> io::Result<(SocketAddr, Option<SocketAddr>, Core)> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let registry = Arc::new(ConnRegistry::default());
    let stats = Arc::new(ServerStats::new());
    // Single sessions rarely coalesce on this core, but the table keeps
    // the metric catalog (and render semantics) identical to the event
    // core's.
    let flights = Arc::new(FlightTable::new());
    let hub = config.metrics_enabled.then(|| {
        let hub = MetricsHub::new();
        hub.set_slow_threshold_us(config.slow_query_us);
        Arc::new(hub)
    });
    let max_connections = config.max_connections;

    let metrics_listener = config
        .metrics_addr
        .as_deref()
        .map(TcpListener::bind)
        .transpose()?;
    let metrics_addr = metrics_listener
        .as_ref()
        .map(|l| l.local_addr())
        .transpose()?;
    let metrics_thread = metrics_listener.map(|listener| {
        let shutdown = Arc::clone(&shutdown);
        let hub = hub.clone();
        let router = router.clone();
        let flights = Arc::clone(&flights);
        let stats = Arc::clone(&stats);
        thread::spawn(move || {
            serve_scrapes(
                listener,
                &shutdown,
                hub.as_deref(),
                &router,
                &flights,
                &stats,
            )
        })
    });

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active);
        let registry = Arc::clone(&registry);
        let stats = Arc::clone(&stats);
        let flights = Arc::clone(&flights);
        let hub = hub.clone();
        thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if active.load(Ordering::SeqCst) >= max_connections {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    refuse(stream);
                    continue;
                }
                // A connection the registry cannot reach would be invisible
                // to the drain (shutdown would stall the full deadline and
                // still leave it running); refuse it instead. try_clone only
                // fails under fd exhaustion, where shedding load is the
                // right call anyway.
                let Ok(clone) = stream.try_clone() else {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    refuse(stream);
                    continue;
                };
                active.fetch_add(1, Ordering::SeqCst);
                let conn_id = registry.register(clone);
                stats.accepted.fetch_add(1, Ordering::Relaxed);
                stats.live_connections.fetch_add(1, Ordering::Relaxed);
                let guard = ConnGuard {
                    active: Arc::clone(&active),
                    registry: Arc::clone(&registry),
                    stats: Arc::clone(&stats),
                    conn_id,
                };
                let router = router.clone();
                let shutdown = Arc::clone(&shutdown);
                let stats = Arc::clone(&stats);
                let flights = Arc::clone(&flights);
                let hub = hub.clone();
                thread::spawn(move || {
                    let _guard = guard;
                    // The executor's sharded session releases this
                    // connection's overlays on every shard when the thread
                    // ends, however it ends.
                    let mut executor = Executor::for_router(router)
                        .with_flights(flights)
                        .with_server_stats(stats)
                        .with_session_id(conn_id);
                    if let Some(hub) = &hub {
                        executor = executor.with_metrics(Arc::clone(hub));
                    }
                    let _ = serve_connection(stream, &mut executor, hub.as_deref(), &shutdown);
                });
            }
        })
    };

    Ok((
        addr,
        metrics_addr,
        Core {
            addr,
            metrics_addr,
            shutdown,
            active,
            registry,
            accept_thread: Some(accept_thread),
            metrics_thread,
        },
    ))
}

struct ConnGuard {
    active: Arc<AtomicUsize>,
    registry: Arc<ConnRegistry>,
    stats: Arc<ServerStats>,
    conn_id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.registry.deregister(self.conn_id);
        self.active.fetch_sub(1, Ordering::SeqCst);
        self.stats.live_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The scrape endpoint, threaded-core style: one blocking thread accepts
/// scrape connections, reads each request head under a short timeout,
/// answers with the same catalog the event core serves, and closes.
fn serve_scrapes(
    listener: TcpListener,
    shutdown: &AtomicBool,
    hub: Option<&MetricsHub>,
    router: &ShardedGraphManager,
    flights: &FlightTable,
    stats: &ServerStats,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut head = Vec::new();
        let mut chunk = [0u8; 1024];
        while head.len() <= http::MAX_HEAD_BYTES && !http::head_complete(&head) {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => head.extend_from_slice(&chunk[..n]),
            }
        }
        if !http::head_complete(&head) {
            continue;
        }
        let reply = http::respond(&head, || {
            render_prometheus(&metrics_report(hub, router, Some(flights), Some(stats)))
        });
        let _ = stream.write_all(&reply);
    }
}

fn refuse(stream: TcpStream) {
    let mut w = BufWriter::new(stream);
    let _ = w.write_all(b"ERR server busy\nEND\n");
    let _ = w.flush();
}

fn serve_connection(
    stream: TcpStream,
    executor: &mut Executor,
    hub: Option<&MetricsHub>,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    // A generous read timeout so half-dead peers cannot pin a connection
    // slot forever.
    stream.set_read_timeout(Some(Duration::from_secs(300)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        // A draining shutdown shuts this socket's read half, which
        // surfaces here as EOF (or an error) — both paths drop the
        // executor and release the session's overlays.
        match read_bounded_line(&mut reader, &mut line, MAX_LINE_BYTES) {
            Ok(Some(())) => {}
            Ok(None) => return Ok(()), // client closed the connection
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                writer.write_all(&frame_error("request line too long", executor.protocol()))?;
                writer.flush()?;
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        if request.eq_ignore_ascii_case("QUIT") {
            // Handled outside the language; the goodbye honors the
            // session's current encoding.
            writer.write_all(&Response::Bye.to_frame(executor.protocol()))?;
            writer.flush()?;
            return Ok(());
        }
        // One complete reply frame — text lines + END or one binary frame —
        // rendered by the executor (or served pre-framed from the response
        // cache). Errors arrive already rendered as error frames.
        if let Some(hub) = hub {
            // This core has no reactor fast path: every request takes the
            // "worker" path (the connection's own thread).
            hub.path_worker.inc();
        }
        let reply = executor.execute_framed(request);
        writer.write_all(reply.as_ref())?;
        writer.flush()?;
        if shutdown.load(Ordering::SeqCst) {
            // Draining: the in-flight request got its response; close now.
            return Ok(());
        }
    }
}
