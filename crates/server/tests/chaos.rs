//! Fault-injected end-to-end tests: a real server process (or an
//! in-process core) is driven into the failure modes the storage and
//! serving layers claim to survive, and the claims are checked over the
//! wire.
//!
//! * **Degraded mode** — `HISTORYGRAPH_FAILPOINTS` makes every WAL append
//!   fail with EIO in a spawned server. Appends must come back as typed
//!   `DEGRADED` errors (sticky — the tail is read-only from the first
//!   fatal failure), reads must keep serving, `STATS HEALTH` must report
//!   the degradation in both encodings, and a restart without the fault
//!   must recover every append acked *before* the failure and accept new
//!   ones — the rolled-back append is gone, not half-applied.
//! * **Quarantine** — a tail WAL poisoned with records that replay but
//!   fail to apply quarantines the tail on first touch; other shards keep
//!   serving and `STATS HEALTH` names the sick shard.
//! * **Overload** — a one-worker server with a one-slot queue and a
//!   millisecond deadline is flooded; some requests must be shed with
//!   `ERR overloaded`, queued requests past the deadline must be refused
//!   with `ERR deadline exceeded`, the counters must surface in `STATS
//!   METRICS`, and the server must serve normally once the flood passes.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use historygraph::{GraphManagerConfig, ShardedConfig, ShardedGraphManager, WalSyncPolicy};
use server::{serve_sharded, Client, ServerConfig};
use tgraph::{Event, EventList};

/// Kills the child on drop so a failing assertion never leaks a server.
struct ServerProc {
    child: Child,
    addr: String,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl ServerProc {
    /// Spawns the real server binary over `dir` with extra environment
    /// variables (the failpoint channel) and waits for its banner.
    fn spawn_with_env(dir: &Path, env: &[(&str, &str)]) -> ServerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_histql_server"));
        cmd.args([
            "--addr",
            "127.0.0.1:0",
            "--toy",
            "--shards",
            "1",
            "--data-dir",
            dir.to_str().unwrap(),
            "--wal-sync",
            "always",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn histql_server");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("read banner");
        let addr = banner
            .split("histql server on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unparseable banner: {banner:?}"))
            .to_string();
        ServerProc { child, addr }
    }

    fn spawn(dir: &Path) -> ServerProc {
        Self::spawn_with_env(dir, &[])
    }

    fn connect(&self) -> Client {
        for _ in 0..50 {
            if let Ok(c) = Client::connect(&self.addr) {
                return c;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("could not connect to {}", self.addr);
    }

    /// SIGKILL — no shutdown hooks, no final fsync.
    fn kill(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("wait");
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chaos-e2e-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Node ids of the appended (`9000 + i`) nodes visible at `t`.
fn appended_nodes_at(client: &mut Client, t: i64) -> Vec<u64> {
    let lines = client
        .send_ok(&format!("GET GRAPH AT {t} WITH +node:all"))
        .unwrap();
    let mut ids: Vec<u64> = lines
        .iter()
        .filter_map(|l| l.strip_prefix("N "))
        .filter_map(|rest| rest.split_whitespace().next())
        .filter_map(|id| id.parse().ok())
        .filter(|&id| id >= 9000)
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn a_degraded_tail_serves_reads_and_recovers_after_restart() {
    let dir = test_dir("degraded");
    // Phase 1: build the deployment and ack some appends cleanly.
    let server = ServerProc::spawn(&dir);
    let mut client = server.connect();
    const N: u64 = 10;
    for i in 0..N {
        client
            .send_ok(&format!("APPEND NODE {} {}", 100 + i, 9000 + i))
            .unwrap();
    }
    drop(client);
    server.kill();

    // Phase 2: recover with every WAL append failing fatally.
    let server = ServerProc::spawn_with_env(&dir, &[("HISTORYGRAPH_FAILPOINTS", "wal.append=eio")]);
    let mut client = server.connect();
    // Recovery itself only reads; the acked appends are all visible.
    assert_eq!(
        appended_nodes_at(&mut client, 1000),
        (9000..9000 + N).collect::<Vec<_>>()
    );
    // The first append hits the fault, rolls back, and degrades the tail.
    let reply = client.send("APPEND NODE 200 9900").unwrap();
    assert!(reply[0].starts_with("ERR"), "{:?}", reply[0]);
    // Degradation is sticky: the next append is refused as DEGRADED even
    // though the reply travels before the WAL is touched again.
    let reply = client.send("APPEND NODE 201 9901").unwrap();
    assert!(reply[0].contains("DEGRADED"), "{:?}", reply[0]);
    // Reads keep serving from the degraded tail.
    assert_eq!(
        appended_nodes_at(&mut client, 1000),
        (9000..9000 + N).collect::<Vec<_>>()
    );
    // STATS HEALTH reports it in text...
    let health = client.send_ok("STATS HEALTH").unwrap();
    assert!(health[0].contains("degraded=true"), "{health:?}");
    assert!(
        health.iter().any(|l| l.contains("state=degraded")),
        "{health:?}"
    );
    // ...and over the binary protocol (frame tag 18).
    client.binary().unwrap();
    match client.send_binary("STATS HEALTH").unwrap() {
        histql::Frame::Response(resp) => {
            let lines = resp.to_lines();
            assert!(lines[0].contains("degraded=true"), "{lines:?}");
        }
        other => panic!("expected a health response frame, got {other:?}"),
    }
    drop(client);
    server.kill();

    // Phase 3: restart without the fault. Everything acked before the
    // failure is back, the rolled-back appends are not, and the tail
    // accepts writes again.
    let server = ServerProc::spawn(&dir);
    let mut client = server.connect();
    assert_eq!(
        appended_nodes_at(&mut client, 1000),
        (9000..9000 + N).collect::<Vec<_>>()
    );
    let health = client.send_ok("STATS HEALTH").unwrap();
    assert!(health[0].contains("degraded=false"), "{health:?}");
    client.send_ok("APPEND NODE 300 9950").unwrap();
    assert!(appended_nodes_at(&mut client, 1000).contains(&9950));
    drop(client);
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_poisoned_tail_is_quarantined_while_other_shards_serve() {
    let dir = test_dir("quarantine");
    // 60 nodes at t = 1..=60 across two shards; shard 1 is the tail.
    let events = EventList::from_events(
        (1..=60)
            .map(|i| Event::add_node(i, 1000 + i as u64))
            .collect(),
    );
    let config = ShardedConfig::default()
        .with_shards(2)
        .with_quarantine_retry_ms(600_000)
        .with_manager(GraphManagerConfig::default());
    drop(
        ShardedGraphManager::build_durable(&events, config.clone(), &dir, WalSyncPolicy::Always)
            .unwrap(),
    );
    // Poison the tail WAL with records that replay fine but fail to apply
    // (duplicate node ids). Two of them defeat the drop-one-record heal.
    let wal = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| {
            p.extension().is_some_and(|x| x == "log")
                && p.file_name().is_some_and(|f| f != "keys.log")
        })
        .expect("a wal-*.log in the data dir");
    let mut replay = kvstore::wal::Wal::open(&wal, WalSyncPolicy::Always).unwrap();
    for i in 0..2u64 {
        replay
            .wal
            .append(&Event::add_node(61 + i as i64, 1001 + i))
            .unwrap();
    }
    drop(replay);

    let router = ShardedGraphManager::open(&dir, config, WalSyncPolicy::Always).unwrap();
    let server = serve_sharded(router, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // Touching the tail quarantines it; the error names the shard.
    let reply = client.send("GET GRAPH AT 55").unwrap();
    assert!(reply[0].contains("quarantined"), "{:?}", reply[0]);
    // The healthy shard keeps serving.
    let lines = client.send_ok("GET GRAPH AT 10").unwrap();
    assert!(lines[0].starts_with("OK GRAPH t=10"), "{lines:?}");
    // STATS HEALTH names the sick shard without touching it again.
    let health = client.send_ok("STATS HEALTH").unwrap();
    assert!(health[0].contains("quarantined=1"), "{health:?}");
    assert!(
        health.iter().any(|l| l.contains("state=quarantined")),
        "{health:?}"
    );
    drop(client);
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_sheds_and_deadlines_fire_under_a_full_queue() {
    // 4000 nodes make a full render slow enough that a one-worker queue
    // backs up under eight concurrent clients.
    let events = EventList::from_events(
        (1..=4000)
            .map(|i| Event::add_node(i, 1000 + i as u64))
            .collect(),
    );
    let router = ShardedGraphManager::build_in_memory(&events, ShardedConfig::default()).unwrap();
    let server = serve_sharded(
        router,
        ServerConfig {
            worker_threads: 1,
            max_queue_depth: 1,
            request_timeout_ms: 1,
            max_connections: 64,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Flood until both protections have fired (a single round usually
    // does it; the retry bound keeps the test honest on a loaded machine).
    let mut shed = 0usize;
    let mut deadline = 0usize;
    let mut served = 0usize;
    for _round in 0..20 {
        let workers: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    // Distinct timestamps defeat the response cache and the
                    // reactor's fast path: every request takes the queue.
                    let t = 3990 - i;
                    c.send(&format!("GET GRAPH AT {t} WITH +node:all"))
                        .map(|lines| lines[0].clone())
                })
            })
            .collect();
        for w in workers {
            match w.join().unwrap() {
                Ok(first) if first.starts_with("OK GRAPH") => served += 1,
                Ok(first) if first.contains("overloaded") => shed += 1,
                Ok(first) if first.contains("deadline exceeded") => deadline += 1,
                Ok(first) => panic!("unexpected reply: {first:?}"),
                Err(_) => {} // connection refused under the flood: fine
            }
        }
        if shed > 0 && deadline > 0 {
            break;
        }
    }
    assert!(shed > 0, "no request was shed ({served} served)");
    assert!(
        deadline > 0,
        "no queued request hit its deadline ({served} served, {shed} shed)"
    );
    assert!(served > 0, "the head-of-line requests should still serve");

    // The flood is over; the server serves normally again and the
    // counters surface in STATS METRICS.
    let mut client = Client::connect(addr).unwrap();
    let lines = client.send_ok("GET GRAPH AT 100").unwrap();
    assert!(lines[0].starts_with("OK GRAPH t=100"), "{lines:?}");
    let metrics = client.send_ok("STATS METRICS").unwrap();
    let get = |name: &str| -> u64 {
        metrics
            .iter()
            .find_map(|l| l.strip_prefix(&format!("M {name} counter value=")))
            .unwrap_or_else(|| panic!("missing {name} in {metrics:?}"))
            .parse()
            .unwrap()
    };
    assert!(get("requests_shed_total") >= shed as u64);
    // Service-phase overruns are counted too (every served render here
    // blows the 1 ms budget), so the counter is at least the refusals.
    assert!(get("deadline_exceeded_total") >= deadline as u64);
}
