//! Crash-injection end-to-end test: a real server process over a durable
//! `--data-dir` is SIGKILLed mid-ingest and restarted, and every append it
//! acknowledged before the kill must be visible again — the durability
//! contract of `--wal-sync always`. A second scenario tears the WAL at an
//! arbitrary byte offset (the on-disk image a crash mid-write leaves
//! behind) and asserts recovery truncates to a clean record-boundary
//! prefix instead of refusing to start or resurrecting half an event.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use server::Client;

/// Kills the child on drop so a failing assertion never leaks a server.
struct ServerProc {
    child: Child,
    addr: String,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl ServerProc {
    /// Spawns the real server binary over `dir` and waits for its banner.
    fn spawn(dir: &Path) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_histql_server"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--toy",
                "--shards",
                "1",
                "--data-dir",
                dir.to_str().unwrap(),
                "--wal-sync",
                "always",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn histql_server");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("read banner");
        // "histql server on 127.0.0.1:PORT — ..."
        let addr = banner
            .split("histql server on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unparseable banner: {banner:?}"))
            .to_string();
        ServerProc { child, addr }
    }

    fn connect(&self) -> Client {
        for _ in 0..50 {
            if let Ok(c) = Client::connect(&self.addr) {
                return c;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("could not connect to {}", self.addr);
    }

    /// SIGKILL — no shutdown hooks, no final fsync: the crash under test.
    fn kill(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("wait");
        // Make sure nothing else can reach the dead server's port.
        assert!(
            TcpStream::connect(&self.addr).is_err() || {
                std::thread::sleep(Duration::from_millis(50));
                true
            }
        );
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("durability-e2e-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Node ids of the appended (`9000 + i`) nodes visible at `t`.
fn appended_nodes_at(client: &mut Client, t: i64) -> Vec<u64> {
    let lines = client
        .send_ok(&format!("GET GRAPH AT {t} WITH +node:all"))
        .unwrap();
    let mut ids: Vec<u64> = lines
        .iter()
        .filter_map(|l| l.strip_prefix("N "))
        .filter_map(|rest| rest.split_whitespace().next())
        .filter_map(|id| id.parse().ok())
        .filter(|&id| id >= 9000)
        .collect();
    ids.sort_unstable();
    ids
}

fn wal_file(dir: &Path) -> PathBuf {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| {
            p.extension().is_some_and(|x| x == "log")
                && p.file_name().is_some_and(|f| f != "keys.log")
        })
        .expect("a wal-*.log in the data dir")
}

fn storage_line(client: &mut Client) -> String {
    client.send_ok("STATS STORAGE").unwrap().remove(0)
}

#[test]
fn acked_appends_survive_a_sigkill_and_restart() {
    let dir = test_dir("sigkill");
    let server = ServerProc::spawn(&dir);
    let mut client = server.connect();
    assert!(storage_line(&mut client).contains("durable=true policy=always"));

    // Every append below is acknowledged (send_ok waits for the reply), so
    // under --wal-sync always each one is on disk before we move on.
    const N: u64 = 30;
    for i in 0..N {
        client
            .send_ok(&format!("APPEND NODE {} {}", 100 + i, 9000 + i))
            .unwrap();
    }
    server.kill(); // mid-ingest as far as the server knows — no shutdown path

    let server = ServerProc::spawn(&dir);
    let mut client = server.connect();
    let line = storage_line(&mut client);
    assert!(line.contains("durable=true"), "{line}");
    assert!(!line.contains("recovery_ms=0"), "{line}");

    // Every acknowledged append is visible again...
    let ids = appended_nodes_at(&mut client, 1000);
    assert_eq!(ids, (9000..9000 + N).collect::<Vec<_>>());
    // ...and chronology survived recovery: the tail still rejects times
    // before its last event and accepts later ones.
    let err = client.send("APPEND NODE 100 9900").unwrap();
    assert!(err[0].starts_with("ERR"), "{:?}", err[0]);
    client
        .send_ok(&format!("APPEND NODE {} 9900", 100 + N))
        .unwrap();
    drop(client);
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_wal_torn_at_an_arbitrary_offset_recovers_a_clean_prefix() {
    let dir = test_dir("torn");
    let server = ServerProc::spawn(&dir);
    let mut client = server.connect();
    let wal = wal_file(&dir);
    // Length before any appends: the built tail's preloaded events. The
    // tear is injected after this point so the surviving prefix is over
    // the appends we count below.
    let base_len = std::fs::metadata(&wal).unwrap().len();

    const N: u64 = 20;
    for i in 0..N {
        client
            .send_ok(&format!("APPEND NODE {} {}", 100 + i, 9000 + i))
            .unwrap();
    }
    server.kill();

    // Tear the log at a pseudo-random byte offset within the appended
    // region — the image of a crash that caught the final write(s) midway.
    let full_len = std::fs::metadata(&wal).unwrap().len();
    assert!(full_len > base_len, "appends reached the WAL");
    let seed = std::process::id() as u64 ^ 0x9E37_79B9_7F4A_7C15;
    let cut = base_len + seed % (full_len - base_len);
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .unwrap()
        .set_len(cut)
        .unwrap();

    let server = ServerProc::spawn(&dir);
    let mut client = server.connect();
    let line = storage_line(&mut client);
    assert!(line.contains("durable=true"), "{line}");

    // The recovered state must be an exact record-boundary prefix of the
    // acked appends: some k survive, and node 9000+i is visible iff i < k.
    let ids = appended_nodes_at(&mut client, 1000);
    let k = ids.len() as u64;
    assert!(k < N, "the tear at {cut} removed at least the last record");
    assert_eq!(ids, (9000..9000 + k).collect::<Vec<_>>(), "not a prefix");
    // And the WAL on disk shrank to that clean prefix (no torn bytes kept).
    assert!(std::fs::metadata(&wal).unwrap().len() <= cut);

    // Serving continues: appends after the surviving prefix are accepted.
    client.send_ok("APPEND NODE 500 9990").unwrap();
    drop(client);
    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}
