//! Workspace-local stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no registry access, so the
//! handful of `Buf`/`BufMut` methods the codec uses are provided here over
//! plain slices and `Vec<u8>`. Semantics match the real crate for the
//! methods that exist; anything else is deliberately absent.

/// Read side: a cursor-like view that consumes from the front.
pub trait Buf {
    /// Pops the first byte, advancing the view.
    ///
    /// # Panics
    /// Panics if the buffer is empty (same contract as the real crate).
    fn get_u8(&mut self) -> u8;
}

impl Buf for &[u8] {
    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("get_u8 on empty buffer");
        *self = rest;
        *first
    }
}

/// Write side: append primitives to a growable buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u64` in little-endian byte order.
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u8_and_u64() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u64_le(0x0102_0304_0506_0708);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r, 0x0102_0304_0506_0708u64.to_le_bytes());
    }
}
