//! Workspace-local stand-in for `criterion`.
//!
//! Implements the small API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, and `Bencher::iter` — with a simple
//! warmup-then-measure loop instead of criterion's statistical machinery.
//! Each benchmark prints its mean wall-clock time per iteration. Good enough
//! to keep `cargo bench` runnable offline; absolute numbers are indicative
//! only.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\nbench group: {}", name.into());
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 10, f);
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; runs the timed routine.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // One warmup pass, then `samples` measured passes.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        mean_ns: 0.0,
    };
    f(&mut b);
    println!("  {name:<40} {}", format_ns(b.mean_ns));
}

fn format_ns(ns: f64) -> String {
    let d = Duration::from_nanos(ns as u64);
    if ns >= 1e9 {
        format!("{:>10.3} s/iter", d.as_secs_f64())
    } else if ns >= 1e6 {
        format!("{:>10.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:>10.0} ns/iter")
    }
}

/// Opaque value barrier preventing the optimizer from deleting the routine.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collects benchmark functions into a group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_formats() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(ran >= 3);
        assert!(format_ns(1.5e6).contains("ms/iter"));
    }
}
