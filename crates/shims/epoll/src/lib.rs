//! Workspace-local readiness poller in the style of `mio`'s `Poll`.
//!
//! On Linux this wraps the raw `epoll_create1`/`epoll_ctl`/`epoll_wait`
//! syscalls (declared via `extern "C"` against the libc that `std` already
//! links — no external crate). Everywhere else it falls back to `poll(2)`
//! with an internal registration table, which is slower per wakeup but
//! semantically identical for the level-triggered subset used here. The
//! libc constant values are audited per-OS (linux, macos/ios, freebsd);
//! any other target fails to compile rather than misbehave at runtime.
//!
//! The API surface is deliberately small: register a file descriptor with a
//! [`Token`] and an [`Interest`], call [`Poller::wait`], and get back
//! [`Event`]s. A [`Waker`] (a non-blocking pipe registered under a reserved
//! token) lets other threads interrupt a blocked `wait`.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_void};
use std::time::Duration;

/// Caller-chosen identifier attached to a registered file descriptor and
/// echoed back on every readiness [`Event`] for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Token value reserved for the internal [`Waker`] pipe; never reported.
/// `usize::MAX` rather than `u64::MAX`: reported tokens round-trip through
/// `Token(usize)`, so on 32-bit targets a wider sentinel would come back
/// truncated, never match, and leak waker events to the caller.
const WAKER_TOKEN: u64 = usize::MAX as u64;

/// Which readiness classes a registration is interested in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Interest in neither read nor write readiness — only error/hangup
    /// conditions (which both backends always report) wake the poller.
    /// Used to keep watching a connection for disconnects while
    /// backpressure masks its reads.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
    /// Interest in read readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Interest in write readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Interest in both read and write readiness.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Whether read readiness is requested.
    pub fn is_readable(self) -> bool {
        self.readable
    }

    /// Whether write readiness is requested.
    pub fn is_writable(self) -> bool {
        self.writable
    }
}

/// A single readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
    hangup: bool,
}

impl Event {
    /// Token the triggering fd was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Read readiness (includes hangup/error so a subsequent `read` observes
    /// the condition instead of the connection stalling).
    pub fn is_readable(&self) -> bool {
        self.readable || self.error || self.hangup
    }

    /// Write readiness (includes error for the same reason).
    pub fn is_writable(&self) -> bool {
        self.writable || self.error
    }

    /// An error condition was reported for the fd.
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// Peer hung up.
    pub fn is_hangup(&self) -> bool {
        self.hangup
    }
}

/// Reusable buffer of [`Event`]s filled by [`Poller::wait`].
#[derive(Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// Creates an empty event buffer. Capacity grows on demand; `wait`
    /// reports at most 1024 events per call.
    pub fn new() -> Events {
        Events::default()
    }

    /// Iterates over the events from the most recent `wait`.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.inner.iter()
    }

    /// Number of events from the most recent `wait`.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the most recent `wait` returned no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

const MAX_EVENTS_PER_WAIT: usize = 1024;

/// Handle that interrupts a [`Poller::wait`] from another thread.
///
/// Internally the write end of a non-blocking pipe whose read end the poller
/// owns and drains; wakes coalesce while the pipe is non-empty.
pub struct Waker {
    write_fd: RawFd,
}

// The write end of the pipe is only ever touched via `write(2)`.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Interrupts a concurrent or subsequent `wait`. Never blocks; a full
    /// pipe already guarantees the pending wake.
    pub fn wake(&self) {
        let byte = [1u8];
        // EAGAIN means a wake is already pending; anything else is ignored
        // because there is no meaningful recovery for a failed self-wake.
        unsafe { write(self.write_fd, byte.as_ptr() as *const c_void, 1) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { close(self.write_fd) };
    }
}

/// Readiness poller over a set of registered file descriptors.
pub struct Poller {
    imp: Imp,
    /// Read end of the waker pipe, drained inside `wait`.
    waker_read_fd: RawFd,
    waker_write_fd: RawFd,
}

impl Poller {
    /// Creates a poller with its waker pipe already registered.
    pub fn new() -> io::Result<Poller> {
        let (read_fd, write_fd) = waker_pipe()?;
        let imp = Imp::new()?;
        let mut poller = Poller {
            imp,
            waker_read_fd: read_fd,
            waker_write_fd: write_fd,
        };
        poller.register_raw(read_fd, WAKER_TOKEN, Interest::READABLE)?;
        Ok(poller)
    }

    /// Returns a [`Waker`] for this poller. The waker owns a duplicate of
    /// the pipe's write end, so it stays valid independently of the poller.
    pub fn waker(&self) -> io::Result<Waker> {
        let fd = unsafe { fcntl_int(self.waker_write_fd, F_DUPFD_CLOEXEC, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { write_fd: fd })
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.register_raw(fd, token.0 as u64, interest)
    }

    fn register_raw(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.imp.register(fd, token, interest)
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn reregister(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.imp.reregister(fd, token.0 as u64, interest)
    }

    /// Removes `fd` from the poller. The fd must still be open.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.imp.deregister(fd)
    }

    /// Blocks until at least one registered fd is ready, the timeout lapses,
    /// or a [`Waker`] fires. Waker notifications are drained internally and
    /// not reported as events.
    pub fn wait(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        self.imp.wait(&mut events.inner, timeout)?;
        let mut woken = false;
        events.inner.retain(|ev| {
            if ev.token.0 as u64 == WAKER_TOKEN {
                woken = true;
                false
            } else {
                true
            }
        });
        if woken {
            self.drain_waker();
        }
        Ok(())
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe {
                read(
                    self.waker_read_fd,
                    buf.as_mut_ptr() as *mut c_void,
                    buf.len(),
                )
            };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.waker_read_fd);
            close(self.waker_write_fd);
        }
    }
}

/// Raises the process `RLIMIT_NOFILE` soft limit toward `target` (clamped to
/// the hard limit). Returns the resulting soft limit. Benches that open
/// thousands of sockets call this; failure to raise is not an error as long
/// as the current limit can be read.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur >= target {
        return Ok(lim.cur);
    }
    let want = target.min(lim.max);
    let new = Rlimit {
        cur: want,
        max: lim.max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
        Ok(want)
    } else {
        Ok(lim.cur)
    }
}

// ---------------------------------------------------------------------------
// libc declarations shared by both backends. `std` links libc on every
// supported platform, so these resolve without adding a dependency.
// ---------------------------------------------------------------------------

// F_GETFL/F_SETFL share their values across every supported platform; the
// constants that differ are gated per-OS below. An unaudited target is a
// compile error, not silently-wrong syscalls (a mis-valued O_NONBLOCK, for
// instance, would leave the waker pipe blocking and wedge the reactor).
const F_SETFL: c_int = 4;
const F_GETFL: c_int = 3;

#[cfg(target_os = "linux")]
mod os_consts {
    use super::c_int;
    pub const F_DUPFD_CLOEXEC: c_int = 1030;
    pub const O_NONBLOCK: c_int = 0o4000;
    pub const RLIMIT_NOFILE: c_int = 7;
}

#[cfg(any(target_os = "macos", target_os = "ios"))]
mod os_consts {
    use super::c_int;
    pub const F_DUPFD_CLOEXEC: c_int = 67;
    pub const O_NONBLOCK: c_int = 0x4;
    pub const RLIMIT_NOFILE: c_int = 8;
}

#[cfg(target_os = "freebsd")]
mod os_consts {
    use super::c_int;
    pub const F_DUPFD_CLOEXEC: c_int = 17;
    pub const O_NONBLOCK: c_int = 0x4;
    pub const RLIMIT_NOFILE: c_int = 8;
}

#[cfg(not(any(
    target_os = "linux",
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd"
)))]
compile_error!(
    "the epoll shim's libc constants have only been audited for \
     linux/macos/ios/freebsd; add an os_consts module for this target"
);

use os_consts::{F_DUPFD_CLOEXEC, O_NONBLOCK, RLIMIT_NOFILE};

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn pipe(fds: *mut c_int) -> c_int;
    #[link_name = "fcntl"]
    fn fcntl_int(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { fcntl_int(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if unsafe { fcntl_int(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

fn waker_pipe() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0 as c_int; 2];
    if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
        return Err(io::Error::last_os_error());
    }
    for fd in fds {
        if let Err(e) = set_nonblocking_fd(fd) {
            unsafe {
                close(fds[0]);
                close(fds[1]);
            }
            return Err(e);
        }
    }
    Ok((fds[0], fds[1]))
}

fn timeout_millis(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        // Round up so a 100µs timeout does not spin as 0ms.
        Some(d) => d
            .as_millis()
            .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
            .min(c_int::MAX as u128) as c_int,
    }
}

// ---------------------------------------------------------------------------
// Linux backend: raw epoll.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod imp {
    use super::*;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    // The kernel ABI packs epoll_event on x86-64 only.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    pub(super) struct Imp {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Imp {
        pub(super) fn new() -> io::Result<Imp> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Imp {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS_PER_WAIT],
            })
        }

        fn interest_bits(interest: Interest) -> u32 {
            let mut bits = EPOLLRDHUP;
            if interest.is_readable() {
                bits |= EPOLLIN;
            }
            if interest.is_writable() {
                bits |= EPOLLOUT;
            }
            bits
        }

        fn ctl(&mut self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Self::interest_bits(interest),
                data: token,
            };
            let arg = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, arg) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn register(&mut self, fd: RawFd, token: u64, i: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, i)
        }

        pub(super) fn reregister(&mut self, fd: RawFd, token: u64, i: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, i)
        }

        pub(super) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READABLE)
        }

        pub(super) fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let millis = timeout_millis(timeout);
            let n = loop {
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        millis,
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for raw in &self.buf[..n] {
                let bits = raw.events;
                out.push(Event {
                    token: Token(raw.data as usize),
                    readable: bits & EPOLLIN != 0 || bits & EPOLLRDHUP != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & EPOLLERR != 0,
                    hangup: bits & EPOLLHUP != 0 || bits & EPOLLRDHUP != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Imp {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

// ---------------------------------------------------------------------------
// Portable backend: poll(2) over an internal registration table.
// ---------------------------------------------------------------------------

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::*;
    use std::collections::HashMap;
    use std::os::raw::{c_short, c_ulong};

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    pub(super) struct Imp {
        registry: HashMap<RawFd, (u64, Interest)>,
    }

    impl Imp {
        pub(super) fn new() -> io::Result<Imp> {
            Ok(Imp {
                registry: HashMap::new(),
            })
        }

        pub(super) fn register(&mut self, fd: RawFd, token: u64, i: Interest) -> io::Result<()> {
            if self.registry.insert(fd, (token, i)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        pub(super) fn reregister(&mut self, fd: RawFd, token: u64, i: Interest) -> io::Result<()> {
            match self.registry.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, i);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            match self.registry.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut fds: Vec<PollFd> = Vec::with_capacity(self.registry.len());
            let mut tokens: Vec<u64> = Vec::with_capacity(self.registry.len());
            for (&fd, &(token, interest)) in &self.registry {
                let mut events = 0;
                if interest.is_readable() {
                    events |= POLLIN;
                }
                if interest.is_writable() {
                    events |= POLLOUT;
                }
                fds.push(PollFd {
                    fd,
                    events,
                    revents: 0,
                });
                tokens.push(token);
            }
            let millis = timeout_millis(timeout);
            let n = loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, millis) };
                if n >= 0 {
                    break n;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (slot, token) in fds.iter().zip(tokens) {
                let bits = slot.revents;
                if bits == 0 {
                    continue;
                }
                out.push(Event {
                    token: Token(token as usize),
                    readable: bits & POLLIN != 0,
                    writable: bits & POLLOUT != 0,
                    error: bits & POLLERR != 0,
                    hangup: bits & POLLHUP != 0,
                });
                if out.len() == MAX_EVENTS_PER_WAIT {
                    break;
                }
            }
            Ok(())
        }
    }
}

use imp::Imp;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn wait_times_out_with_no_events() {
        let mut poller = Poller::new().unwrap();
        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn waker_interrupts_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = Arc::new(poller.waker().unwrap());
        let w = Arc::clone(&waker);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            w.wake();
        });
        let mut events = Events::new();
        let start = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        // Waker events are internal, not reported.
        assert!(events.is_empty());
        handle.join().unwrap();
        // A second wait must not see a stale wake.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn reports_read_readiness_on_tcp_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), Token(7), Interest::READABLE)
            .unwrap();

        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "no data yet");

        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("readable event");
        assert_eq!(ev.token(), Token(7));
        assert!(ev.is_readable());

        let mut server = server;
        let mut buf = [0u8; 16];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn reregister_switches_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        drop(client);

        let mut poller = Poller::new().unwrap();
        let fd = server.as_raw_fd();
        poller.register(fd, Token(1), Interest::WRITABLE).unwrap();

        let mut events = Events::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(1) && e.is_writable()));

        poller.reregister(fd, Token(2), Interest::READABLE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        // Peer closed, so read readiness (EOF) is reported under the new token.
        assert!(events
            .iter()
            .any(|e| e.token() == Token(2) && e.is_readable()));

        poller.deregister(fd).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn nofile_limit_is_readable() {
        let cur = raise_nofile_limit(1024).unwrap();
        assert!(cur >= 256, "soft nofile limit unexpectedly tiny: {cur}");
    }
}
