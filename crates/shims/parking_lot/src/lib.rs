//! Workspace-local stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the poison-free `parking_lot` API:
//! `lock()`/`read()`/`write()` return guards directly. A poisoned lock is
//! recovered rather than propagated — a panic mid-critical-section in this
//! codebase leaves only in-memory caches in a partially updated state, and
//! the real `parking_lot` would continue as well.

use std::fmt;
use std::sync::{self, PoisonError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
