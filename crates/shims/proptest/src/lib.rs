//! Workspace-local stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro, `any::<T>()` for primitives, integer-range strategies, a string
//! strategy (the regex pattern is interpreted only as "arbitrary short
//! string" — sufficient for the `".{0,64}"` patterns used here), and
//! `collection::vec`. Unlike the real crate there is no shrinking and no
//! persisted failure seeds; cases are generated deterministically from the
//! test name, so failures reproduce across runs.

use std::ops::Range;

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary byte string (the test name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's full domain: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String-pattern strategy. The pattern is treated as "arbitrary string of
/// up to 64 chars" regardless of content; the workspace only uses `.{0,64}`.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let len = rng.below(65) as usize;
        (0..len)
            .map(|_| {
                // Mix ASCII with some multi-byte chars to exercise UTF-8 paths.
                match rng.below(8) {
                    0 => 'é',
                    1 => '✓',
                    2 => '𝕏',
                    _ => (b' ' + rng.below(95) as u8) as char,
                }
            })
            .collect()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.len, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{any, proptest, Arbitrary, Strategy};
}

/// Declares `#[test]` functions whose arguments are drawn from strategies;
/// each test body runs for a fixed number of generated cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..64u32 {
                    $( let $arg = $crate::Strategy::sample(&$strat, &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any_are_in_domain(x in 10u64..20, y in -3i64..3, z in any::<u8>()) {
            assert!((10..20).contains(&x));
            assert!((-3..3).contains(&y));
            let _ = z;
        }

        #[test]
        fn string_strategy_is_bounded(s in ".{0,64}") {
            assert!(s.chars().count() <= 64);
        }

        #[test]
        fn vec_strategy_respects_length(v in crate::collection::vec(any::<u8>(), 0..256)) {
            assert!(v.len() < 256);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
