//! Workspace-local stand-in for the `rand` crate.
//!
//! The dataset generators only need a seeded, deterministic, decent-quality
//! source of `u64`s plus the `gen`/`gen_range`/`gen_bool` conveniences, so
//! this shim provides exactly that over a splitmix64 core. Sequences differ
//! from the real `rand::StdRng` (different algorithm), but every generator in
//! this workspace is seeded and only promises determinism per seed, which
//! this shim preserves.

use std::ops::Range;

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the generator's full output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty, matching the real crate.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is at most span/2^64: irrelevant for the
                // synthetic-trace spans (< 2^32) used in this workspace.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// The convenience sampling surface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a half-open integer range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    ///
    /// Passes through every 64-bit value exactly once over its period and is
    /// the recommended seeder for larger generators; plenty for synthetic
    /// trace generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
