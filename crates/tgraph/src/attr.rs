//! Attribute values and attribute maps.
//!
//! Nodes and edges carry an open-ended list of attribute–value pairs; the
//! attribute names are not fixed a priori and new attributes may appear at
//! any time (Section 3.1). Values are dynamically typed.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically typed attribute value.
///
/// `Float` values compare and hash by their bit pattern so that attribute
/// maps and deltas can treat values as set elements (`NaN == NaN` here,
/// unlike IEEE semantics — that is intentional: deltas must round-trip).
#[derive(Clone, Debug)]
pub enum AttrValue {
    /// UTF-8 string value.
    Str(String),
    /// 64-bit signed integer value.
    Int(i64),
    /// 64-bit floating point value (bitwise equality).
    Float(f64),
    /// Boolean value.
    Bool(bool),
}

impl AttrValue {
    /// Short type name, used in diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Str(_) => "str",
            AttrValue::Int(_) => "int",
            AttrValue::Float(_) => "float",
            AttrValue::Bool(_) => "bool",
        }
    }

    /// Returns the string payload if this is a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer payload if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload if this is a `Float` value.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttrValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate heap + inline size in bytes, used by memory accounting in
    /// the GraphPool experiments (Figure 8a).
    pub fn approx_size(&self) -> usize {
        std::mem::size_of::<AttrValue>()
            + match self {
                AttrValue::Str(s) => s.len(),
                _ => 0,
            }
    }
}

impl PartialEq for AttrValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (AttrValue::Str(a), AttrValue::Str(b)) => a == b,
            (AttrValue::Int(a), AttrValue::Int(b)) => a == b,
            (AttrValue::Float(a), AttrValue::Float(b)) => a.to_bits() == b.to_bits(),
            (AttrValue::Bool(a), AttrValue::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for AttrValue {}

impl Hash for AttrValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            AttrValue::Str(s) => {
                state.write_u8(0);
                s.hash(state);
            }
            AttrValue::Int(i) => {
                state.write_u8(1);
                i.hash(state);
            }
            AttrValue::Float(x) => {
                state.write_u8(2);
                x.to_bits().hash(state);
            }
            AttrValue::Bool(b) => {
                state.write_u8(3);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

impl From<i64> for AttrValue {
    fn from(i: i64) -> Self {
        AttrValue::Int(i)
    }
}

impl From<f64> for AttrValue {
    fn from(x: f64) -> Self {
        AttrValue::Float(x)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

/// An attribute map: attribute name → value.
///
/// A `BTreeMap` keeps iteration order deterministic, which matters for
/// reproducible deltas, codecs, and tests; attribute maps are small (the
/// paper's Dataset 1 uses 10 attributes per node) so the tree overhead is
/// negligible.
pub type AttrMap = BTreeMap<String, AttrValue>;

/// Approximate memory footprint of an attribute map in bytes.
pub fn attr_map_size(map: &AttrMap) -> usize {
    map.iter()
        .map(|(k, v)| k.len() + v.approx_size() + 32)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_and_hash_distinguish_types() {
        let mut set = HashSet::new();
        set.insert(AttrValue::Int(1));
        set.insert(AttrValue::Float(1.0));
        set.insert(AttrValue::Bool(true));
        set.insert(AttrValue::Str("1".into()));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn float_equality_is_bitwise() {
        assert_eq!(AttrValue::Float(f64::NAN), AttrValue::Float(f64::NAN));
        assert_ne!(AttrValue::Float(0.0), AttrValue::Float(-0.0));
        assert_eq!(AttrValue::Float(2.5), AttrValue::Float(2.5));
    }

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(AttrValue::from("x").as_str(), Some("x"));
        assert_eq!(AttrValue::from(3i64).as_int(), Some(3));
        assert_eq!(AttrValue::from(2.5).as_float(), Some(2.5));
        assert_eq!(AttrValue::from(true).as_bool(), Some(true));
        assert_eq!(AttrValue::from(true).as_int(), None);
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(AttrValue::from("ab").to_string(), "ab");
        assert_eq!(AttrValue::from(7i64).to_string(), "7");
        assert_eq!(AttrValue::from(false).to_string(), "false");
    }

    #[test]
    fn approx_size_counts_string_payload() {
        let short = AttrValue::from("a");
        let long = AttrValue::from("abcdefghij");
        assert!(long.approx_size() > short.approx_size());
    }

    #[test]
    fn attr_map_size_grows_with_entries() {
        let mut m = AttrMap::new();
        let empty = attr_map_size(&m);
        m.insert("name".into(), AttrValue::from("alice"));
        assert!(attr_map_size(&m) > empty);
    }
}
