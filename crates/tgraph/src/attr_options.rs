//! Attribute retrieval options (Table 1 of the paper).
//!
//! Every snapshot query specifies which attribute information should be
//! fetched alongside the graph structure, as a string formed by concatenating
//! sub-options:
//!
//! * `-node:all` (default) — none of the node attributes,
//! * `+node:all` — all node attributes,
//! * `+node:attr1` — the node attribute named `attr1` (overrides `-node:all`),
//! * `-node:attr1` — exclude `attr1` (overrides `+node:all`),
//!
//! and the same four forms with `edge:`. For example
//! `"+node:all-node:salary+edge:name"` fetches every node attribute except
//! `salary`, plus the edge attribute `name`.

use std::collections::BTreeSet;

use crate::error::{Result, TgError};
use crate::event::EventCategory;

/// Selection of attributes for one element class (nodes or edges).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct AttrSelection {
    /// If `true`, start from "all attributes" and subtract `excluded`;
    /// if `false`, start from "no attributes" and add `included`.
    pub default_all: bool,
    /// Attributes explicitly included (meaningful when `default_all == false`).
    pub included: BTreeSet<String>,
    /// Attributes explicitly excluded (meaningful when `default_all == true`).
    pub excluded: BTreeSet<String>,
}

impl AttrSelection {
    /// A selection that fetches no attributes (the default).
    pub fn none() -> Self {
        AttrSelection::default()
    }

    /// A selection that fetches every attribute.
    pub fn all() -> Self {
        AttrSelection {
            default_all: true,
            ..Default::default()
        }
    }

    /// Whether the attribute named `key` should be fetched.
    pub fn wants(&self, key: &str) -> bool {
        if self.default_all {
            !self.excluded.contains(key)
        } else {
            self.included.contains(key)
        }
    }

    /// Whether this selection fetches no attributes at all.
    pub fn is_none(&self) -> bool {
        !self.default_all && self.included.is_empty()
    }

    /// Whether this selection fetches every attribute without exception.
    pub fn is_all(&self) -> bool {
        self.default_all && self.excluded.is_empty()
    }
}

/// Parsed attribute options for one snapshot query.
///
/// `AttrOptions` is `Eq + Hash`, so it can key caches of materialized
/// snapshots: two options strings that select the same attributes (for
/// example `"+node:all+edge:all"` written in any order) compare equal and
/// hash identically.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct AttrOptions {
    /// Node attribute selection.
    pub node: AttrSelection,
    /// Edge attribute selection.
    pub edge: AttrSelection,
}

impl AttrOptions {
    /// Structure only: no node or edge attributes (the `""` options string).
    pub fn structure_only() -> Self {
        AttrOptions::default()
    }

    /// All node and edge attributes (`"+node:all+edge:all"`).
    pub fn all() -> Self {
        AttrOptions {
            node: AttrSelection::all(),
            edge: AttrSelection::all(),
        }
    }

    /// Parses an options string such as `"+node:all-node:salary+edge:name"`.
    ///
    /// The empty string parses to [`AttrOptions::structure_only`].
    pub fn parse(s: &str) -> Result<Self> {
        let mut opts = AttrOptions::default();
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let sign = match bytes[i] as char {
                '+' => true,
                '-' => false,
                c => {
                    return Err(TgError::InvalidAttrOptions(format!(
                        "expected '+' or '-' at offset {i}, found '{c}' in {s:?}"
                    )))
                }
            };
            i += 1;
            // token runs until the next '+'/'-' or end of string
            let start = i;
            while i < bytes.len() && bytes[i] != b'+' && bytes[i] != b'-' {
                i += 1;
            }
            let token = &s[start..i];
            let (class, name) = token.split_once(':').ok_or_else(|| {
                TgError::InvalidAttrOptions(format!("missing ':' in option {token:?}"))
            })?;
            if name.is_empty() {
                return Err(TgError::InvalidAttrOptions(format!(
                    "empty attribute name in option {token:?}"
                )));
            }
            let selection = match class {
                "node" => &mut opts.node,
                "edge" => &mut opts.edge,
                other => {
                    return Err(TgError::InvalidAttrOptions(format!(
                        "unknown element class {other:?} (expected 'node' or 'edge')"
                    )))
                }
            };
            // Invariant kept here: `included` is only populated when
            // `default_all == false`, `excluded` only when it is `true`.
            // Without it, semantically identical option strings (e.g.
            // "+node:foo+node:all" vs "+node:all") would compare unequal,
            // fragmenting anything keyed by `AttrOptions`, and
            // `canonical_string` would not round-trip.
            match (sign, name) {
                (true, "all") => {
                    selection.default_all = true;
                    selection.excluded.clear();
                    selection.included.clear();
                }
                (false, "all") => {
                    selection.default_all = false;
                    selection.included.clear();
                    selection.excluded.clear();
                }
                (true, attr) => {
                    if selection.default_all {
                        selection.excluded.remove(attr);
                    } else {
                        selection.included.insert(attr.to_owned());
                    }
                }
                (false, attr) => {
                    if selection.default_all {
                        selection.excluded.insert(attr.to_owned());
                    } else {
                        selection.included.remove(attr);
                    }
                }
            }
        }
        Ok(opts)
    }

    /// Whether the named node attribute should be fetched.
    pub fn wants_node_attr(&self, key: &str) -> bool {
        self.node.wants(key)
    }

    /// Whether the named edge attribute should be fetched.
    pub fn wants_edge_attr(&self, key: &str) -> bool {
        self.edge.wants(key)
    }

    /// Whether any node attributes might be fetched at all.
    pub fn needs_node_attrs(&self) -> bool {
        !self.node.is_none()
    }

    /// Whether any edge attributes might be fetched at all.
    pub fn needs_edge_attrs(&self) -> bool {
        !self.edge.is_none()
    }

    /// Renders the canonical options string these options parse from:
    /// sub-options ordered node before edge, `all` selectors first, explicit
    /// attribute names in lexicographic order. The empty selection renders
    /// as `""`; [`AttrOptions::parse`] of the result reproduces `self`.
    pub fn canonical_string(&self) -> String {
        let mut out = String::new();
        for (class, sel) in [("node", &self.node), ("edge", &self.edge)] {
            if sel.default_all {
                out.push_str(&format!("+{class}:all"));
                for name in &sel.excluded {
                    out.push_str(&format!("-{class}:{name}"));
                }
            } else {
                for name in &sel.included {
                    out.push_str(&format!("+{class}:{name}"));
                }
            }
        }
        out
    }

    /// The delta/eventlist components that must be read from storage to
    /// satisfy a query with these options. The structure component is always
    /// required; attribute components only when the corresponding selection
    /// is non-empty. Transient components are never needed for point
    /// retrieval (only by interval retrieval).
    pub fn required_components(&self) -> Vec<EventCategory> {
        let mut cs = vec![EventCategory::Structure];
        if self.needs_node_attrs() {
            cs.push(EventCategory::NodeAttr);
        }
        if self.needs_edge_attrs() {
            cs.push(EventCategory::EdgeAttr);
        }
        cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string_is_structure_only() {
        let o = AttrOptions::parse("").unwrap();
        assert_eq!(o, AttrOptions::structure_only());
        assert!(!o.needs_node_attrs());
        assert!(!o.needs_edge_attrs());
        assert_eq!(o.required_components(), vec![EventCategory::Structure]);
    }

    #[test]
    fn paper_example_parses_correctly() {
        // "all node attributes except salary, and the edge attribute name"
        let o = AttrOptions::parse("+node:all-node:salary+edge:name").unwrap();
        assert!(o.wants_node_attr("affiliation"));
        assert!(!o.wants_node_attr("salary"));
        assert!(o.wants_edge_attr("name"));
        assert!(!o.wants_edge_attr("weight"));
        assert_eq!(
            o.required_components(),
            vec![
                EventCategory::Structure,
                EventCategory::NodeAttr,
                EventCategory::EdgeAttr
            ]
        );
    }

    #[test]
    fn include_overrides_default_none() {
        let o = AttrOptions::parse("+node:name").unwrap();
        assert!(o.wants_node_attr("name"));
        assert!(!o.wants_node_attr("other"));
        assert!(o.needs_node_attrs());
        assert!(!o.needs_edge_attrs());
    }

    #[test]
    fn exclude_overrides_previous_include() {
        let o = AttrOptions::parse("+node:name-node:name").unwrap();
        assert!(!o.wants_node_attr("name"));
        assert!(o.node.is_none());
    }

    #[test]
    fn all_selector_resets_exclusions_when_reapplied() {
        let o = AttrOptions::parse("+node:all-node:x+node:all").unwrap();
        assert!(o.wants_node_attr("x"));
        assert!(o.node.is_all());
    }

    #[test]
    fn minus_all_clears_includes() {
        let o = AttrOptions::parse("+edge:w-edge:all").unwrap();
        assert!(!o.wants_edge_attr("w"));
        assert!(o.edge.is_none());
    }

    #[test]
    fn malformed_strings_are_rejected() {
        assert!(AttrOptions::parse("node:all").is_err());
        assert!(AttrOptions::parse("+nodeall").is_err());
        assert!(AttrOptions::parse("+vertex:all").is_err());
        assert!(AttrOptions::parse("+node:").is_err());
    }

    #[test]
    fn equivalent_option_strings_compare_equal() {
        // Stale include/exclude entries must not survive an "all" selector:
        // these pairs select identical attributes and must be one cache key.
        for (a, b) in [
            ("+node:foo+node:all", "+node:all"),
            ("-node:x+node:x+node:all", "+node:all"),
            ("+edge:w-edge:all", ""),
            ("+node:all-node:x+node:x", "+node:all"),
        ] {
            let pa = AttrOptions::parse(a).unwrap();
            let pb = AttrOptions::parse(b).unwrap();
            assert_eq!(pa, pb, "{a:?} vs {b:?}");
            assert_eq!(pa.canonical_string(), pb.canonical_string());
        }
    }

    #[test]
    fn canonical_string_round_trips() {
        for s in [
            "",
            "+node:all+edge:all",
            "+node:all-node:salary+edge:name",
            "+edge:w",
            "+node:b+node:a",
            "+node:foo+node:all",
            "+node:all-node:x+node:y",
        ] {
            let o = AttrOptions::parse(s).unwrap();
            let canon = o.canonical_string();
            assert_eq!(AttrOptions::parse(&canon).unwrap(), o, "{s:?} -> {canon:?}");
        }
        assert_eq!(AttrOptions::all().canonical_string(), "+node:all+edge:all");
        assert_eq!(AttrOptions::structure_only().canonical_string(), "");
    }

    #[test]
    fn all_constructor_matches_parsed_form() {
        assert_eq!(
            AttrOptions::all(),
            AttrOptions::parse("+node:all+edge:all").unwrap()
        );
    }
}
