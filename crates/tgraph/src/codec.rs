//! A compact, dependency-free binary codec.
//!
//! Deltas and eventlists are persisted in a key–value store as opaque byte
//! strings (Section 4.2). Rather than pulling in a serialization framework,
//! this module provides a small hand-rolled codec: varint-encoded integers,
//! length-prefixed strings and sequences, and one tag byte per enum variant.
//! The format is deterministic, versioned implicitly by the crate, and
//! covered by round-trip property tests.

use bytes::{Buf, BufMut};

use crate::attr::{AttrMap, AttrValue};
use crate::delta::{AttrAssignment, Delta, EdgeRecord, StructDelta};
use crate::error::{Result, TgError};
use crate::event::{Event, EventKind};
use crate::eventlist::EventList;
use crate::ids::{EdgeId, NodeId, Timestamp};
use crate::snapshot::Snapshot;

/// Types that can serialize themselves into a byte buffer.
pub trait Encode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Types that can deserialize themselves from a byte slice.
pub trait Decode: Sized {
    /// Reads one value from the reader, advancing it.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;

    /// Convenience: decode a value that occupies the entire slice.
    fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(TgError::Codec(format!(
                "{} trailing bytes after decoding",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

/// A cursor over a byte slice with bounds-checked reads.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// `true` if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn read_u8(&mut self) -> Result<u8> {
        if self.buf.is_empty() {
            return Err(TgError::Codec("unexpected end of input".into()));
        }
        Ok(self.buf.get_u8())
    }

    fn read_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(TgError::Codec(format!(
                "needed {n} bytes, only {} available",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads an unsigned LEB128 varint.
    pub fn read_varint(&mut self) -> Result<u64> {
        let mut result = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift >= 64 {
                return Err(TgError::Codec("varint overflow".into()));
            }
            result |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }
}

/// Appends an unsigned LEB128 varint.
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// ZigZag encoding of a signed integer into an unsigned one.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// --- primitives -----------------------------------------------------------

impl Encode for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, *self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        r.read_varint()
    }
}

impl Encode for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, *self as u64);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(r.read_varint()? as usize)
    }
}

impl Encode for i64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, zigzag(*self));
    }
}

impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(unzigzag(r.read_varint()?))
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(TgError::Codec(format!("invalid bool byte {b}"))),
        }
    }
}

impl Encode for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(self.to_bits());
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let bytes = r.read_bytes(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = r.read_varint()? as usize;
        let bytes = r.read_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| TgError::Codec(format!("invalid utf-8 string: {e}")))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(TgError::Codec(format!("invalid option tag {b}"))),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: Encode> Encode for std::sync::Arc<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        T::encode(self, buf);
    }
}

impl<T: Decode> Decode for std::sync::Arc<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(std::sync::Arc::new(T::decode(r)?))
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = r.read_varint()? as usize;
        // Guard against absurd lengths from corrupt input: each element needs
        // at least one byte in this format.
        if len > r.remaining() {
            return Err(TgError::Codec(format!(
                "sequence length {len} exceeds remaining input {}",
                r.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

// --- ids and attribute values ---------------------------------------------

impl Encode for NodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.0);
    }
}

impl Decode for NodeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(NodeId(r.read_varint()?))
    }
}

impl Encode for EdgeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.0);
    }
}

impl Decode for EdgeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(EdgeId(r.read_varint()?))
    }
}

impl Encode for Timestamp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for Timestamp {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Timestamp(i64::decode(r)?))
    }
}

impl Encode for AttrValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            AttrValue::Str(s) => {
                buf.put_u8(0);
                s.encode(buf);
            }
            AttrValue::Int(i) => {
                buf.put_u8(1);
                i.encode(buf);
            }
            AttrValue::Float(x) => {
                buf.put_u8(2);
                x.encode(buf);
            }
            AttrValue::Bool(b) => {
                buf.put_u8(3);
                b.encode(buf);
            }
        }
    }
}

impl Decode for AttrValue {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.read_u8()? {
            0 => Ok(AttrValue::Str(String::decode(r)?)),
            1 => Ok(AttrValue::Int(i64::decode(r)?)),
            2 => Ok(AttrValue::Float(f64::decode(r)?)),
            3 => Ok(AttrValue::Bool(bool::decode(r)?)),
            t => Err(TgError::Codec(format!("invalid AttrValue tag {t}"))),
        }
    }
}

fn encode_attr_map(map: &AttrMap, buf: &mut Vec<u8>) {
    write_varint(buf, map.len() as u64);
    for (k, v) in map {
        k.encode(buf);
        v.encode(buf);
    }
}

fn decode_attr_map(r: &mut Reader<'_>) -> Result<AttrMap> {
    let len = r.read_varint()? as usize;
    let mut map = AttrMap::new();
    for _ in 0..len {
        let k = String::decode(r)?;
        let v = AttrValue::decode(r)?;
        map.insert(k, v);
    }
    Ok(map)
}

// --- events ----------------------------------------------------------------

impl Encode for Event {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.time.encode(buf);
        match &self.kind {
            EventKind::AddNode { node } => {
                buf.put_u8(0);
                node.encode(buf);
            }
            EventKind::DeleteNode { node } => {
                buf.put_u8(1);
                node.encode(buf);
            }
            EventKind::AddEdge {
                edge,
                src,
                dst,
                directed,
            } => {
                buf.put_u8(2);
                edge.encode(buf);
                src.encode(buf);
                dst.encode(buf);
                directed.encode(buf);
            }
            EventKind::DeleteEdge {
                edge,
                src,
                dst,
                directed,
            } => {
                buf.put_u8(3);
                edge.encode(buf);
                src.encode(buf);
                dst.encode(buf);
                directed.encode(buf);
            }
            EventKind::SetNodeAttr {
                node,
                key,
                old,
                new,
            } => {
                buf.put_u8(4);
                node.encode(buf);
                key.encode(buf);
                old.encode(buf);
                new.encode(buf);
            }
            EventKind::SetEdgeAttr {
                edge,
                key,
                old,
                new,
            } => {
                buf.put_u8(5);
                edge.encode(buf);
                key.encode(buf);
                old.encode(buf);
                new.encode(buf);
            }
            EventKind::TransientEdge { src, dst, payload } => {
                buf.put_u8(6);
                src.encode(buf);
                dst.encode(buf);
                payload.encode(buf);
            }
            EventKind::TransientNode { node, payload } => {
                buf.put_u8(7);
                node.encode(buf);
                payload.encode(buf);
            }
        }
    }
}

impl Decode for Event {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let time = Timestamp::decode(r)?;
        let kind = match r.read_u8()? {
            0 => EventKind::AddNode {
                node: NodeId::decode(r)?,
            },
            1 => EventKind::DeleteNode {
                node: NodeId::decode(r)?,
            },
            2 => EventKind::AddEdge {
                edge: EdgeId::decode(r)?,
                src: NodeId::decode(r)?,
                dst: NodeId::decode(r)?,
                directed: bool::decode(r)?,
            },
            3 => EventKind::DeleteEdge {
                edge: EdgeId::decode(r)?,
                src: NodeId::decode(r)?,
                dst: NodeId::decode(r)?,
                directed: bool::decode(r)?,
            },
            4 => EventKind::SetNodeAttr {
                node: NodeId::decode(r)?,
                key: String::decode(r)?,
                old: Option::<AttrValue>::decode(r)?,
                new: Option::<AttrValue>::decode(r)?,
            },
            5 => EventKind::SetEdgeAttr {
                edge: EdgeId::decode(r)?,
                key: String::decode(r)?,
                old: Option::<AttrValue>::decode(r)?,
                new: Option::<AttrValue>::decode(r)?,
            },
            6 => EventKind::TransientEdge {
                src: NodeId::decode(r)?,
                dst: NodeId::decode(r)?,
                payload: Option::<AttrValue>::decode(r)?,
            },
            7 => EventKind::TransientNode {
                node: NodeId::decode(r)?,
                payload: Option::<AttrValue>::decode(r)?,
            },
            t => return Err(TgError::Codec(format!("invalid Event tag {t}"))),
        };
        Ok(Event { time, kind })
    }
}

impl Encode for EventList {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        for ev in self.events() {
            ev.encode(buf);
        }
    }
}

impl Decode for EventList {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let events = Vec::<Event>::decode_with_len(r)?;
        Ok(EventList::from_events(events))
    }
}

trait DecodeWithLen: Sized {
    fn decode_with_len(r: &mut Reader<'_>) -> Result<Self>;
}

impl DecodeWithLen for Vec<Event> {
    fn decode_with_len(r: &mut Reader<'_>) -> Result<Self> {
        let len = r.read_varint()? as usize;
        if len > r.remaining() {
            return Err(TgError::Codec(format!(
                "event count {len} exceeds remaining input {}",
                r.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(Event::decode(r)?);
        }
        Ok(out)
    }
}

// --- deltas ----------------------------------------------------------------

impl Encode for EdgeRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.edge.encode(buf);
        self.src.encode(buf);
        self.dst.encode(buf);
        self.directed.encode(buf);
    }
}

impl Decode for EdgeRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(EdgeRecord {
            edge: EdgeId::decode(r)?,
            src: NodeId::decode(r)?,
            dst: NodeId::decode(r)?,
            directed: bool::decode(r)?,
        })
    }
}

impl Encode for StructDelta {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.add_nodes.encode(buf);
        self.del_nodes.encode(buf);
        self.add_edges.encode(buf);
        self.del_edges.encode(buf);
    }
}

impl Decode for StructDelta {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(StructDelta {
            add_nodes: Vec::decode(r)?,
            del_nodes: Vec::decode(r)?,
            add_edges: Vec::decode(r)?,
            del_edges: Vec::decode(r)?,
        })
    }
}

impl<Id: Encode + Copy> Encode for AttrAssignment<Id> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.key.encode(buf);
        self.value.encode(buf);
    }
}

impl<Id: Decode + Copy> Decode for AttrAssignment<Id> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(AttrAssignment {
            id: Id::decode(r)?,
            key: String::decode(r)?,
            value: Option::<AttrValue>::decode(r)?,
        })
    }
}

impl Encode for Delta {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.structure.encode(buf);
        self.node_attrs.encode(buf);
        self.edge_attrs.encode(buf);
    }
}

impl Decode for Delta {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Delta {
            structure: StructDelta::decode(r)?,
            node_attrs: Vec::decode(r)?,
            edge_attrs: Vec::decode(r)?,
        })
    }
}

// --- snapshots ---------------------------------------------------------------

impl Encode for Snapshot {
    fn encode(&self, buf: &mut Vec<u8>) {
        let mut nodes: Vec<_> = self.nodes().collect();
        nodes.sort_by_key(|(id, _)| *id);
        write_varint(buf, nodes.len() as u64);
        for (id, data) in nodes {
            id.encode(buf);
            encode_attr_map(&data.attrs, buf);
        }
        let mut edges: Vec<_> = self.edges().collect();
        edges.sort_by_key(|(id, _)| *id);
        write_varint(buf, edges.len() as u64);
        for (id, data) in edges {
            id.encode(buf);
            data.src.encode(buf);
            data.dst.encode(buf);
            data.directed.encode(buf);
            encode_attr_map(&data.attrs, buf);
        }
    }
}

impl Decode for Snapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let mut snap = Snapshot::new();
        let node_count = r.read_varint()? as usize;
        for _ in 0..node_count {
            let id = NodeId::decode(r)?;
            let attrs = decode_attr_map(r)?;
            snap.ensure_node(id);
            for (k, v) in attrs {
                snap.set_node_attr(id, &k, Some(v))?;
            }
        }
        let edge_count = r.read_varint()? as usize;
        for _ in 0..edge_count {
            let id = EdgeId::decode(r)?;
            let src = NodeId::decode(r)?;
            let dst = NodeId::decode(r)?;
            let directed = bool::decode(r)?;
            let attrs = decode_attr_map(r)?;
            snap.add_edge(id, src, dst, directed)?;
            for (k, v) in attrs {
                snap.set_edge_attr(id, &k, Some(v))?;
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = value.to_bytes();
        let decoded = T::from_bytes(&bytes).expect("decode");
        assert_eq!(&decoded, value);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&0u64);
        roundtrip(&u64::MAX);
        roundtrip(&0i64);
        roundtrip(&-1i64);
        roundtrip(&i64::MIN);
        roundtrip(&i64::MAX);
        roundtrip(&true);
        roundtrip(&String::from("héllo wörld"));
        roundtrip(&Some(NodeId(42)));
        roundtrip(&Option::<NodeId>::None);
        roundtrip(&vec![EdgeId(1), EdgeId(2), EdgeId(u64::MAX)]);
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        assert_eq!(5u64.to_bytes().len(), 1);
        assert_eq!(300u64.to_bytes().len(), 2);
        assert!(u64::MAX.to_bytes().len() <= 10);
    }

    #[test]
    fn attr_value_roundtrips() {
        roundtrip(&AttrValue::Str("x".into()));
        roundtrip(&AttrValue::Int(-7));
        roundtrip(&AttrValue::Float(3.25));
        roundtrip(&AttrValue::Float(f64::NAN));
        roundtrip(&AttrValue::Bool(true));
    }

    #[test]
    fn event_roundtrips() {
        roundtrip(&Event::add_node(1, 2));
        roundtrip(&Event::delete_edge(9, 1, 2, 3));
        roundtrip(&Event::set_node_attr(
            4,
            1,
            "k",
            Some(AttrValue::Int(1)),
            None,
        ));
        roundtrip(&Event::transient_edge(5, 1, 2, Some(AttrValue::from("m"))));
    }

    #[test]
    fn eventlist_and_delta_roundtrip() {
        let list = EventList::from_events(vec![
            Event::add_node(1, 1),
            Event::add_node(1, 2),
            Event::add_edge(2, 1, 1, 2),
            Event::set_edge_attr(3, 1, "w", None, Some(AttrValue::Float(0.5))),
        ]);
        roundtrip(&list);

        let mut a = Snapshot::new();
        a.ensure_node(NodeId(1));
        let mut b = a.clone();
        b.add_edge(EdgeId(7), NodeId(1), NodeId(2), true).unwrap();
        b.set_node_attr(NodeId(1), "x", Some(AttrValue::Int(1)))
            .unwrap();
        let delta = Delta::between(&a, &b);
        roundtrip(&delta);
    }

    #[test]
    fn snapshot_roundtrip_preserves_graph() {
        let mut s = Snapshot::new();
        s.ensure_node(NodeId(1));
        s.ensure_node(NodeId(2));
        s.add_edge(EdgeId(1), NodeId(1), NodeId(2), false).unwrap();
        s.set_node_attr(NodeId(1), "name", Some(AttrValue::from("n1")))
            .unwrap();
        s.set_edge_attr(EdgeId(1), "w", Some(AttrValue::Float(1.5)))
            .unwrap();
        let bytes = s.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, s);
        assert!(decoded
            .neighbors(NodeId(2))
            .contains(&(NodeId(1), EdgeId(1))));
    }

    #[test]
    fn corrupt_input_is_an_error_not_a_panic() {
        assert!(Event::from_bytes(&[]).is_err());
        assert!(Event::from_bytes(&[0x00, 0xff]).is_err());
        assert!(String::from_bytes(&[0x05, b'a']).is_err());
        assert!(AttrValue::from_bytes(&[9]).is_err());
        assert!(bool::from_bytes(&[7]).is_err());
        // declared length far larger than the payload
        assert!(Vec::<NodeId>::from_bytes(&[0xff, 0xff, 0x01]).is_err());
        // trailing garbage
        assert!(NodeId::from_bytes(&[0x01, 0x02]).is_err());
    }

    proptest! {
        #[test]
        fn prop_varint_roundtrip(v in any::<u64>()) {
            roundtrip(&v);
        }

        #[test]
        fn prop_zigzag_roundtrip(v in any::<i64>()) {
            roundtrip(&v);
        }

        #[test]
        fn prop_string_roundtrip(s in ".{0,64}") {
            roundtrip(&s.to_string());
        }

        #[test]
        fn prop_event_roundtrip(
            t in -1000i64..1000,
            node in 0u64..10_000,
            edge in 0u64..10_000,
            other in 0u64..10_000,
            which in 0u8..6,
        ) {
            let ev = match which {
                0 => Event::add_node(t, node),
                1 => Event::delete_node(t, node),
                2 => Event::add_edge(t, edge, node, other),
                3 => Event::delete_edge(t, edge, node, other),
                4 => Event::set_node_attr(t, node, "k", None, Some(AttrValue::Int(other as i64))),
                _ => Event::transient_edge(t, node, other, None),
            };
            roundtrip(&ev);
        }

        #[test]
        fn prop_decoding_random_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Any outcome is fine as long as it does not panic.
            let _ = Event::from_bytes(&bytes);
            let _ = Delta::from_bytes(&bytes);
            let _ = EventList::from_bytes(&bytes);
            let _ = Snapshot::from_bytes(&bytes);
        }
    }
}
