//! Deltas: the columnar difference between two snapshots.
//!
//! A delta `∆(S_i, S_p)` contains exactly the information needed to construct
//! snapshot `S_i` from snapshot `S_p`: the elements to delete from `S_p` and
//! the elements to add to it (Section 4.2). Deltas are stored column-wise,
//! separating the *structure* information from the *node-attribute* and
//! *edge-attribute* information, so that a query that needs only the network
//! structure never reads or processes attribute data (Figure 8(d)).

use crate::attr::AttrValue;
use crate::error::Result;
use crate::ids::{EdgeId, NodeId};
use crate::snapshot::Snapshot;

pub use crate::event::EventCategory as DeltaComponent;

/// A compact record of an edge's identity and endpoints, enough to add the
/// edge to a snapshot (attributes travel in the edge-attribute component).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeRecord {
    /// The edge id.
    pub edge: EdgeId,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Whether the edge is directed.
    pub directed: bool,
}

/// The structure component of a delta: node and edge additions/removals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StructDelta {
    /// Nodes to add.
    pub add_nodes: Vec<NodeId>,
    /// Nodes to remove.
    pub del_nodes: Vec<NodeId>,
    /// Edges to add.
    pub add_edges: Vec<EdgeRecord>,
    /// Edges to remove.
    pub del_edges: Vec<EdgeRecord>,
}

impl StructDelta {
    /// Number of structural changes recorded.
    pub fn len(&self) -> usize {
        self.add_nodes.len() + self.del_nodes.len() + self.add_edges.len() + self.del_edges.len()
    }

    /// `true` if no structural change is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An attribute assignment carried by a delta: set `key` on element `id` to
/// `value` (`None` removes the attribute).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrAssignment<Id> {
    /// The element whose attribute is being assigned.
    pub id: Id,
    /// Attribute name.
    pub key: String,
    /// New value; `None` removes the attribute.
    pub value: Option<AttrValue>,
}

/// The difference between a *source* snapshot and a *target* snapshot,
/// split into columnar components.
///
/// Applying a delta to the source snapshot yields the target snapshot
/// (provided all components are present; a delta fetched with a restrictive
/// [`crate::AttrOptions`] may deliberately omit attribute components).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Delta {
    /// Node/edge additions and removals.
    pub structure: StructDelta,
    /// Node attribute assignments (target-state values).
    pub node_attrs: Vec<AttrAssignment<NodeId>>,
    /// Edge attribute assignments (target-state values).
    pub edge_attrs: Vec<AttrAssignment<EdgeId>>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Delta::default()
    }

    /// `true` if the delta records no change at all.
    pub fn is_empty(&self) -> bool {
        self.structure.is_empty() && self.node_attrs.is_empty() && self.edge_attrs.is_empty()
    }

    /// Total number of recorded changes across all components.
    pub fn change_count(&self) -> usize {
        self.structure.len() + self.node_attrs.len() + self.edge_attrs.len()
    }

    /// Computes the delta that transforms `from` into `to`.
    ///
    /// * nodes/edges present in `to` but not `from` are additions,
    /// * nodes/edges present in `from` but not `to` are deletions,
    /// * attribute entries of surviving or added elements that differ are
    ///   emitted as target-state assignments (deleted elements need no
    ///   attribute assignments — removing the element removes its attributes).
    pub fn between(from: &Snapshot, to: &Snapshot) -> Delta {
        let mut delta = Delta::new();

        // Node additions/deletions and attribute reconciliation.
        for (n, to_data) in to.nodes() {
            match from.node(n) {
                None => {
                    delta.structure.add_nodes.push(n);
                    for (k, v) in &to_data.attrs {
                        delta.node_attrs.push(AttrAssignment {
                            id: n,
                            key: k.clone(),
                            value: Some(v.clone()),
                        });
                    }
                }
                Some(from_data) => {
                    for (k, v) in &to_data.attrs {
                        if from_data.attrs.get(k) != Some(v) {
                            delta.node_attrs.push(AttrAssignment {
                                id: n,
                                key: k.clone(),
                                value: Some(v.clone()),
                            });
                        }
                    }
                    for k in from_data.attrs.keys() {
                        if !to_data.attrs.contains_key(k) {
                            delta.node_attrs.push(AttrAssignment {
                                id: n,
                                key: k.clone(),
                                value: None,
                            });
                        }
                    }
                }
            }
        }
        for (n, _) in from.nodes() {
            if !to.has_node(n) {
                delta.structure.del_nodes.push(n);
            }
        }

        // Edge additions/deletions and attribute reconciliation.
        for (e, to_data) in to.edges() {
            match from.edge(e) {
                None => {
                    delta.structure.add_edges.push(EdgeRecord {
                        edge: e,
                        src: to_data.src,
                        dst: to_data.dst,
                        directed: to_data.directed,
                    });
                    for (k, v) in &to_data.attrs {
                        delta.edge_attrs.push(AttrAssignment {
                            id: e,
                            key: k.clone(),
                            value: Some(v.clone()),
                        });
                    }
                }
                Some(from_data) => {
                    for (k, v) in &to_data.attrs {
                        if from_data.attrs.get(k) != Some(v) {
                            delta.edge_attrs.push(AttrAssignment {
                                id: e,
                                key: k.clone(),
                                value: Some(v.clone()),
                            });
                        }
                    }
                    for k in from_data.attrs.keys() {
                        if !to_data.attrs.contains_key(k) {
                            delta.edge_attrs.push(AttrAssignment {
                                id: e,
                                key: k.clone(),
                                value: None,
                            });
                        }
                    }
                }
            }
        }
        for (e, from_data) in from.edges() {
            if !to.has_edge(e) {
                delta.structure.del_edges.push(EdgeRecord {
                    edge: e,
                    src: from_data.src,
                    dst: from_data.dst,
                    directed: from_data.directed,
                });
            }
        }

        // Deterministic ordering: helps codec round-trip tests and makes
        // construction reproducible across runs.
        delta.sort();
        delta
    }

    /// Sorts all component vectors; deltas are set-valued so order carries no
    /// meaning, but deterministic order makes serialization reproducible.
    pub fn sort(&mut self) {
        self.structure.add_nodes.sort_unstable();
        self.structure.del_nodes.sort_unstable();
        self.structure.add_edges.sort_unstable_by_key(|r| r.edge);
        self.structure.del_edges.sort_unstable_by_key(|r| r.edge);
        self.node_attrs
            .sort_by(|a, b| (a.id, &a.key).cmp(&(b.id, &b.key)));
        self.edge_attrs
            .sort_by(|a, b| (a.id, &a.key).cmp(&(b.id, &b.key)));
    }

    /// Applies this delta to `target` in place. Deletions are applied before
    /// additions, and structure before attributes, so that attribute
    /// assignments always refer to elements that exist.
    ///
    /// Deletions of elements that are already absent are tolerated (this
    /// happens when a delta is applied on top of a *partially* fetched graph,
    /// e.g. structure-only retrieval where an attribute-less node was never
    /// materialized); additions of elements that already exist are errors.
    pub fn apply_to(&self, target: &mut Snapshot) -> Result<()> {
        for rec in &self.structure.del_edges {
            if target.has_edge(rec.edge) {
                target.remove_edge(rec.edge)?;
            }
        }
        for n in &self.structure.del_nodes {
            if target.has_node(*n) {
                target.remove_node(*n)?;
            }
        }
        for n in &self.structure.add_nodes {
            target.ensure_node(*n);
        }
        for rec in &self.structure.add_edges {
            if !target.has_edge(rec.edge) {
                target.add_edge(rec.edge, rec.src, rec.dst, rec.directed)?;
            }
        }
        for a in &self.node_attrs {
            if target.has_node(a.id) {
                target.set_node_attr(a.id, &a.key, a.value.clone())?;
            }
        }
        for a in &self.edge_attrs {
            if target.has_edge(a.id) {
                target.set_edge_attr(a.id, &a.key, a.value.clone())?;
            }
        }
        Ok(())
    }

    /// Returns a copy of this delta containing only the requested components.
    pub fn project(&self, components: &[DeltaComponent]) -> Delta {
        let mut out = Delta::new();
        if components.contains(&DeltaComponent::Structure) {
            out.structure = self.structure.clone();
        }
        if components.contains(&DeltaComponent::NodeAttr) {
            out.node_attrs = self.node_attrs.clone();
        }
        if components.contains(&DeltaComponent::EdgeAttr) {
            out.edge_attrs = self.edge_attrs.clone();
        }
        out
    }

    /// Approximate serialized size in bytes of one component; this is the
    /// edge weight used by the query planner (the paper approximates the
    /// read-and-apply cost of an edge by the size of the delta retrieved).
    pub fn component_size(&self, component: DeltaComponent) -> usize {
        match component {
            DeltaComponent::Structure => {
                (self.structure.add_nodes.len() + self.structure.del_nodes.len()) * 9
                    + (self.structure.add_edges.len() + self.structure.del_edges.len()) * 26
            }
            DeltaComponent::NodeAttr => self
                .node_attrs
                .iter()
                .map(|a| 10 + a.key.len() + a.value.as_ref().map_or(1, AttrValue::approx_size))
                .sum(),
            DeltaComponent::EdgeAttr => self
                .edge_attrs
                .iter()
                .map(|a| 10 + a.key.len() + a.value.as_ref().map_or(1, AttrValue::approx_size))
                .sum(),
            DeltaComponent::Transient => 0,
        }
    }

    /// Approximate total serialized size in bytes across all components.
    pub fn total_size(&self) -> usize {
        self.component_size(DeltaComponent::Structure)
            + self.component_size(DeltaComponent::NodeAttr)
            + self.component_size(DeltaComponent::EdgeAttr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrValue;

    fn snap(nodes: &[u64], edges: &[(u64, u64, u64)]) -> Snapshot {
        let mut s = Snapshot::new();
        for &n in nodes {
            s.add_node(NodeId(n)).unwrap();
        }
        for &(e, a, b) in edges {
            s.add_edge(EdgeId(e), NodeId(a), NodeId(b), false).unwrap();
        }
        s
    }

    #[test]
    fn delta_between_identical_snapshots_is_empty() {
        let a = snap(&[1, 2], &[(1, 1, 2)]);
        let d = Delta::between(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.change_count(), 0);
    }

    #[test]
    fn delta_roundtrip_structure() {
        let a = snap(&[1, 2, 3], &[(1, 1, 2)]);
        let b = snap(&[1, 3, 4], &[(2, 3, 4)]);
        let d = Delta::between(&a, &b);
        let mut a2 = a.clone();
        d.apply_to(&mut a2).unwrap();
        assert_eq!(a2, b);
        // and the reverse delta goes back
        let rd = Delta::between(&b, &a);
        let mut b2 = b.clone();
        rd.apply_to(&mut b2).unwrap();
        assert_eq!(b2, a);
    }

    #[test]
    fn delta_roundtrip_attributes() {
        let mut a = snap(&[1, 2], &[(1, 1, 2)]);
        a.set_node_attr(NodeId(1), "name", Some(AttrValue::from("x")))
            .unwrap();
        a.set_node_attr(NodeId(1), "stale", Some(AttrValue::from(1i64)))
            .unwrap();
        a.set_edge_attr(EdgeId(1), "w", Some(AttrValue::from(1i64)))
            .unwrap();
        let mut b = a.clone();
        b.set_node_attr(NodeId(1), "name", Some(AttrValue::from("y")))
            .unwrap();
        b.set_node_attr(NodeId(1), "stale", None).unwrap();
        b.set_node_attr(NodeId(2), "new", Some(AttrValue::from(true)))
            .unwrap();
        b.set_edge_attr(EdgeId(1), "w", Some(AttrValue::from(9i64)))
            .unwrap();

        let d = Delta::between(&a, &b);
        assert!(d.structure.is_empty());
        let mut a2 = a.clone();
        d.apply_to(&mut a2).unwrap();
        assert_eq!(a2, b);
    }

    #[test]
    fn added_node_attributes_travel_in_nodeattr_component() {
        let a = Snapshot::new();
        let mut b = Snapshot::new();
        b.add_node(NodeId(5)).unwrap();
        b.set_node_attr(NodeId(5), "k", Some(AttrValue::Int(1)))
            .unwrap();
        let d = Delta::between(&a, &b);
        assert_eq!(d.structure.add_nodes, vec![NodeId(5)]);
        assert_eq!(d.node_attrs.len(), 1);
        // structure-only projection drops the attribute but keeps the node
        let proj = d.project(&[DeltaComponent::Structure]);
        let mut t = Snapshot::new();
        proj.apply_to(&mut t).unwrap();
        assert!(t.has_node(NodeId(5)));
        assert_eq!(t.node_attr(NodeId(5), "k"), None);
    }

    #[test]
    fn projection_selects_components() {
        let mut a = snap(&[1, 2], &[(1, 1, 2)]);
        a.set_node_attr(NodeId(1), "n", Some(AttrValue::Int(1)))
            .unwrap();
        a.set_edge_attr(EdgeId(1), "e", Some(AttrValue::Int(2)))
            .unwrap();
        let d = Delta::between(&Snapshot::new(), &a);
        let s = d.project(&[DeltaComponent::Structure]);
        assert!(!s.structure.is_empty());
        assert!(s.node_attrs.is_empty() && s.edge_attrs.is_empty());
        let na = d.project(&[DeltaComponent::NodeAttr, DeltaComponent::EdgeAttr]);
        assert!(na.structure.is_empty());
        assert_eq!(na.node_attrs.len(), 1);
        assert_eq!(na.edge_attrs.len(), 1);
    }

    #[test]
    fn component_sizes_reflect_content() {
        let a = snap(&[], &[]);
        let b = snap(&[1, 2, 3], &[(1, 1, 2), (2, 2, 3)]);
        let d = Delta::between(&a, &b);
        assert!(d.component_size(DeltaComponent::Structure) > 0);
        assert_eq!(d.component_size(DeltaComponent::NodeAttr), 0);
        assert_eq!(d.total_size(), d.component_size(DeltaComponent::Structure));
    }

    #[test]
    fn tolerates_deleting_already_absent_elements() {
        let a = snap(&[1, 2], &[(1, 1, 2)]);
        let b = snap(&[1], &[]);
        let d = Delta::between(&a, &b);
        // this delta only deletes; applying it to an empty snapshot must be
        // a silent no-op (partial retrieval can legitimately hit this case)
        let mut empty = Snapshot::new();
        d.apply_to(&mut empty).unwrap();
        assert!(empty.is_empty());
        // applied to the real source it produces the target
        let mut a2 = a.clone();
        d.apply_to(&mut a2).unwrap();
        assert_eq!(a2, b);
    }

    #[test]
    fn deterministic_ordering_after_between() {
        let a = snap(&[], &[]);
        let b = snap(&[5, 3, 1, 4, 2], &[(9, 1, 2), (3, 3, 4)]);
        let d = Delta::between(&a, &b);
        let mut sorted = d.structure.add_nodes.clone();
        sorted.sort_unstable();
        assert_eq!(d.structure.add_nodes, sorted);
        let mut e_sorted = d.structure.add_edges.clone();
        e_sorted.sort_unstable_by_key(|r| r.edge);
        assert_eq!(d.structure.add_edges, e_sorted);
    }
}
