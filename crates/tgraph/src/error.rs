//! Error type shared by the data-model layer.

use std::fmt;

use crate::ids::Timestamp;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TgError>;

/// Errors raised by the temporal-graph data model.
#[derive(Debug, Clone, PartialEq)]
pub enum TgError {
    /// A binary payload could not be decoded (corrupt or truncated data,
    /// or an unknown tag byte).
    Codec(String),
    /// An event could not be applied to a snapshot in the requested
    /// direction, e.g. deleting a node that is not present.
    InvalidEvent(String),
    /// A query referenced a time point outside the recorded history.
    TimeOutOfRange {
        /// The requested time point.
        requested: Timestamp,
        /// First recorded time point.
        start: Timestamp,
        /// Last recorded time point.
        end: Timestamp,
    },
    /// An attribute-options string could not be parsed (Table 1 syntax).
    InvalidAttrOptions(String),
    /// A [`crate::TimeExpression`] was malformed (e.g. variable index out of
    /// range).
    InvalidTimeExpression(String),
    /// Catch-all for violated internal invariants; indicates a bug.
    Internal(String),
}

impl fmt::Display for TgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TgError::Codec(msg) => write!(f, "codec error: {msg}"),
            TgError::InvalidEvent(msg) => write!(f, "invalid event: {msg}"),
            TgError::TimeOutOfRange {
                requested,
                start,
                end,
            } => write!(
                f,
                "time {requested} outside recorded history [{start}, {end}]"
            ),
            TgError::InvalidAttrOptions(msg) => write!(f, "invalid attribute options: {msg}"),
            TgError::InvalidTimeExpression(msg) => write!(f, "invalid time expression: {msg}"),
            TgError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for TgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TgError::TimeOutOfRange {
            requested: Timestamp(50),
            start: Timestamp(0),
            end: Timestamp(10),
        };
        let s = e.to_string();
        assert!(s.contains("50"));
        assert!(s.contains("[0, 10]"));
        assert!(TgError::Codec("boom".into()).to_string().contains("boom"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&TgError::Internal("x".into()));
    }
}
