//! Events: the atomic, bidirectional unit of change (Section 3.1).
//!
//! An event records an atomic activity in the network: creation or deletion
//! of a node or edge, a change of an attribute value, or a *transient*
//! occurrence (e.g. a message) valid only at a single time instant.
//!
//! Events are **bidirectional**: if `G_k = G_{k-1} + E` then
//! `G_{k-1} = G_k - E`, where `+`/`-` denote applying the events of `E` in
//! the forward and backward direction. To make backward application possible
//! without consulting any other state, deletion and attribute-update events
//! carry enough information to restore what they removed (the endpoints of a
//! deleted edge, the old value of an updated attribute, ...).

use crate::attr::AttrValue;
use crate::ids::{EdgeId, NodeId, Timestamp};

/// Which columnar component of a delta / eventlist an event belongs to
/// (Section 4.2: `∆struct`, `∆nodeattr`, `∆edgeattr`, plus `E_transient`
/// for leaf-eventlists).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventCategory {
    /// Node or edge addition/deletion.
    Structure,
    /// Node attribute change.
    NodeAttr,
    /// Edge attribute change.
    EdgeAttr,
    /// Transient node/edge occurrence (single time instant).
    Transient,
}

/// The payload of an [`Event`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A new node appears (`NN` in the paper's notation).
    AddNode {
        /// The node being created.
        node: NodeId,
    },
    /// A node disappears. All its attributes and incident edges must already
    /// have been removed by earlier events for the stream to be well formed.
    DeleteNode {
        /// The node being deleted.
        node: NodeId,
    },
    /// A new edge appears (`NE` in the paper's notation).
    AddEdge {
        /// Unique id of the new edge.
        edge: EdgeId,
        /// Source endpoint (or one endpoint of an undirected edge).
        src: NodeId,
        /// Destination endpoint (or the other endpoint).
        dst: NodeId,
        /// Whether the edge is directed.
        directed: bool,
    },
    /// An edge disappears. Carries the endpoints so the event can be applied
    /// backwards without any additional lookup. All its attributes must
    /// already have been removed by earlier events for the stream to be
    /// well formed — backward application restores only the bare edge, so
    /// an attribute still set at deletion time could not be recovered.
    DeleteEdge {
        /// Id of the edge being deleted.
        edge: EdgeId,
        /// Source endpoint.
        src: NodeId,
        /// Destination endpoint.
        dst: NodeId,
        /// Whether the edge was directed.
        directed: bool,
    },
    /// A node attribute changes (`UNA` in the paper). `old == None` means the
    /// attribute is being created; `new == None` means it is being removed.
    SetNodeAttr {
        /// The node whose attribute changes.
        node: NodeId,
        /// Attribute name.
        key: String,
        /// Previous value (needed for backward application).
        old: Option<AttrValue>,
        /// New value.
        new: Option<AttrValue>,
    },
    /// An edge attribute changes (`UEA` in the paper).
    SetEdgeAttr {
        /// The edge whose attribute changes.
        edge: EdgeId,
        /// Attribute name.
        key: String,
        /// Previous value (needed for backward application).
        old: Option<AttrValue>,
        /// New value.
        new: Option<AttrValue>,
    },
    /// A transient edge valid only at this time instant (e.g. a message from
    /// one node to another). Transient events never affect snapshots; they
    /// are only returned by interval retrieval (`GetHistGraphInterval`).
    TransientEdge {
        /// Originating node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Optional payload.
        payload: Option<AttrValue>,
    },
    /// A transient node occurrence valid only at this time instant.
    TransientNode {
        /// The node in question.
        node: NodeId,
        /// Optional payload.
        payload: Option<AttrValue>,
    },
}

/// An atomic activity in the network, stamped with the single time point at
/// which it occurred.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Event {
    /// The time point at which the activity occurred.
    pub time: Timestamp,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Creates a new event.
    pub fn new(time: impl Into<Timestamp>, kind: EventKind) -> Self {
        Event {
            time: time.into(),
            kind,
        }
    }

    /// The columnar component this event belongs to.
    pub fn category(&self) -> EventCategory {
        match &self.kind {
            EventKind::AddNode { .. }
            | EventKind::DeleteNode { .. }
            | EventKind::AddEdge { .. }
            | EventKind::DeleteEdge { .. } => EventCategory::Structure,
            EventKind::SetNodeAttr { .. } => EventCategory::NodeAttr,
            EventKind::SetEdgeAttr { .. } => EventCategory::EdgeAttr,
            EventKind::TransientEdge { .. } | EventKind::TransientNode { .. } => {
                EventCategory::Transient
            }
        }
    }

    /// Whether the event is transient (does not affect graph snapshots).
    pub fn is_transient(&self) -> bool {
        self.category() == EventCategory::Transient
    }

    /// Whether the event adds an element to the graph (an *insert* in the
    /// terminology of the Section 5 analytical model).
    pub fn is_insert(&self) -> bool {
        matches!(
            &self.kind,
            EventKind::AddNode { .. } | EventKind::AddEdge { .. }
        ) || matches!(
            &self.kind,
            EventKind::SetNodeAttr {
                old: None,
                new: Some(_),
                ..
            } | EventKind::SetEdgeAttr {
                old: None,
                new: Some(_),
                ..
            }
        )
    }

    /// Whether the event removes an element from the graph (a *delete*).
    pub fn is_delete(&self) -> bool {
        matches!(
            &self.kind,
            EventKind::DeleteNode { .. } | EventKind::DeleteEdge { .. }
        ) || matches!(
            &self.kind,
            EventKind::SetNodeAttr {
                old: Some(_),
                new: None,
                ..
            } | EventKind::SetEdgeAttr {
                old: Some(_),
                new: None,
                ..
            }
        )
    }

    /// The node id that determines the horizontal partition of this event
    /// (Section 4.2: `partition_id = h_p(node_id)`).
    ///
    /// Edges (and edge attributes) are assigned to the partition of their
    /// lexicographically smaller endpoint; this is an arbitrary but
    /// deterministic convention applied consistently at storage and at
    /// retrieval time. Edge-attribute events do not carry endpoints, so the
    /// caller (the index builder, which tracks edge endpoints) is expected to
    /// resolve those through [`Event::partition_node_with`].
    pub fn partition_node(&self) -> Option<NodeId> {
        match &self.kind {
            EventKind::AddNode { node }
            | EventKind::DeleteNode { node }
            | EventKind::SetNodeAttr { node, .. }
            | EventKind::TransientNode { node, .. } => Some(*node),
            EventKind::AddEdge { src, dst, .. }
            | EventKind::DeleteEdge { src, dst, .. }
            | EventKind::TransientEdge { src, dst, .. } => Some(*src.min(dst)),
            EventKind::SetEdgeAttr { .. } => None,
        }
    }

    /// Like [`Event::partition_node`], but resolves edge-attribute events via
    /// a caller-provided lookup from edge id to its endpoints.
    pub fn partition_node_with(
        &self,
        edge_endpoints: impl Fn(EdgeId) -> Option<(NodeId, NodeId)>,
    ) -> Option<NodeId> {
        match &self.kind {
            EventKind::SetEdgeAttr { edge, .. } => edge_endpoints(*edge).map(|(a, b)| a.min(b)),
            _ => self.partition_node(),
        }
    }

    // --- Convenience constructors used pervasively in tests and generators ---

    /// `AddNode` event.
    pub fn add_node(time: impl Into<Timestamp>, node: impl Into<NodeId>) -> Self {
        Event::new(time, EventKind::AddNode { node: node.into() })
    }

    /// `DeleteNode` event.
    pub fn delete_node(time: impl Into<Timestamp>, node: impl Into<NodeId>) -> Self {
        Event::new(time, EventKind::DeleteNode { node: node.into() })
    }

    /// Undirected `AddEdge` event.
    pub fn add_edge(
        time: impl Into<Timestamp>,
        edge: impl Into<EdgeId>,
        src: impl Into<NodeId>,
        dst: impl Into<NodeId>,
    ) -> Self {
        Event::new(
            time,
            EventKind::AddEdge {
                edge: edge.into(),
                src: src.into(),
                dst: dst.into(),
                directed: false,
            },
        )
    }

    /// Undirected `DeleteEdge` event.
    pub fn delete_edge(
        time: impl Into<Timestamp>,
        edge: impl Into<EdgeId>,
        src: impl Into<NodeId>,
        dst: impl Into<NodeId>,
    ) -> Self {
        Event::new(
            time,
            EventKind::DeleteEdge {
                edge: edge.into(),
                src: src.into(),
                dst: dst.into(),
                directed: false,
            },
        )
    }

    /// `SetNodeAttr` event.
    pub fn set_node_attr(
        time: impl Into<Timestamp>,
        node: impl Into<NodeId>,
        key: impl Into<String>,
        old: Option<AttrValue>,
        new: Option<AttrValue>,
    ) -> Self {
        Event::new(
            time,
            EventKind::SetNodeAttr {
                node: node.into(),
                key: key.into(),
                old,
                new,
            },
        )
    }

    /// `SetEdgeAttr` event.
    pub fn set_edge_attr(
        time: impl Into<Timestamp>,
        edge: impl Into<EdgeId>,
        key: impl Into<String>,
        old: Option<AttrValue>,
        new: Option<AttrValue>,
    ) -> Self {
        Event::new(
            time,
            EventKind::SetEdgeAttr {
                edge: edge.into(),
                key: key.into(),
                old,
                new,
            },
        )
    }

    /// Transient edge (message) event.
    pub fn transient_edge(
        time: impl Into<Timestamp>,
        src: impl Into<NodeId>,
        dst: impl Into<NodeId>,
        payload: Option<AttrValue>,
    ) -> Self {
        Event::new(
            time,
            EventKind::TransientEdge {
                src: src.into(),
                dst: dst.into(),
                payload,
            },
        )
    }

    /// Approximate in-memory size in bytes, used as the cost proxy for plan
    /// weights and for the analytical model validation.
    pub fn approx_size(&self) -> usize {
        let base = std::mem::size_of::<Event>();
        let extra = match &self.kind {
            EventKind::SetNodeAttr { key, old, new, .. }
            | EventKind::SetEdgeAttr { key, old, new, .. } => {
                key.len()
                    + old.as_ref().map_or(0, AttrValue::approx_size)
                    + new.as_ref().map_or(0, AttrValue::approx_size)
            }
            EventKind::TransientEdge { payload, .. } | EventKind::TransientNode { payload, .. } => {
                payload.as_ref().map_or(0, AttrValue::approx_size)
            }
            _ => 0,
        };
        base + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_event_kinds() {
        assert_eq!(Event::add_node(1, 1).category(), EventCategory::Structure);
        assert_eq!(
            Event::delete_edge(1, 1, 1, 2).category(),
            EventCategory::Structure
        );
        assert_eq!(
            Event::set_node_attr(1, 1, "k", None, Some(AttrValue::Int(1))).category(),
            EventCategory::NodeAttr
        );
        assert_eq!(
            Event::set_edge_attr(1, 1, "k", None, Some(AttrValue::Int(1))).category(),
            EventCategory::EdgeAttr
        );
        assert_eq!(
            Event::transient_edge(1, 1, 2, None).category(),
            EventCategory::Transient
        );
    }

    #[test]
    fn insert_and_delete_classification() {
        assert!(Event::add_node(1, 1).is_insert());
        assert!(!Event::add_node(1, 1).is_delete());
        assert!(Event::delete_edge(1, 1, 1, 2).is_delete());
        assert!(Event::set_node_attr(1, 1, "k", None, Some(AttrValue::Int(1))).is_insert());
        assert!(Event::set_node_attr(1, 1, "k", Some(AttrValue::Int(1)), None).is_delete());
        // A value-to-value update is neither a pure insert nor a pure delete.
        let upd = Event::set_node_attr(1, 1, "k", Some(AttrValue::Int(1)), Some(AttrValue::Int(2)));
        assert!(!upd.is_insert() && !upd.is_delete());
        assert!(!Event::transient_edge(1, 1, 2, None).is_insert());
    }

    #[test]
    fn partitioning_uses_min_endpoint_for_edges() {
        assert_eq!(Event::add_node(1, 9).partition_node(), Some(NodeId(9)));
        assert_eq!(
            Event::add_edge(1, 1, 7, 3).partition_node(),
            Some(NodeId(3))
        );
        assert_eq!(
            Event::transient_edge(1, 5, 2, None).partition_node(),
            Some(NodeId(2))
        );
        let ea = Event::set_edge_attr(1, 4, "w", None, Some(AttrValue::Int(1)));
        assert_eq!(ea.partition_node(), None);
        assert_eq!(
            ea.partition_node_with(|e| if e == EdgeId(4) {
                Some((NodeId(8), NodeId(6)))
            } else {
                None
            }),
            Some(NodeId(6))
        );
    }

    #[test]
    fn approx_size_accounts_for_strings() {
        let small = Event::add_node(1, 1).approx_size();
        let big = Event::set_node_attr(
            1,
            1,
            "a-rather-long-attribute-name",
            None,
            Some(AttrValue::from("a fairly long attribute value")),
        )
        .approx_size();
        assert!(big > small);
    }

    #[test]
    fn transient_flag() {
        assert!(Event::transient_edge(3, 1, 2, None).is_transient());
        assert!(!Event::add_node(3, 1).is_transient());
    }
}
