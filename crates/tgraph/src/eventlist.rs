//! Eventlists: chronologically ordered lists of events.
//!
//! The complete history of a graph is one long eventlist `E`; the DeltaGraph
//! cuts it into *leaf-eventlists* of `L` events each (Section 4.6). A graph
//! "as of time `t`" is the empty graph with every event of time `<= t`
//! applied in order.

use crate::error::{Result, TgError};
use crate::event::{Event, EventCategory};
use crate::ids::Timestamp;
use crate::snapshot::Snapshot;

/// A chronologically ordered list of events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventList {
    events: Vec<Event>,
}

impl EventList {
    /// Creates an empty eventlist.
    pub fn new() -> Self {
        EventList { events: Vec::new() }
    }

    /// Builds an eventlist from an unordered collection of events; events are
    /// stably sorted by timestamp (events sharing a timestamp keep their
    /// relative order, which matters for e.g. "delete edge then delete node"
    /// sequences at the same instant).
    pub fn from_events(mut events: Vec<Event>) -> Self {
        events.sort_by_key(|e| e.time);
        EventList { events }
    }

    /// Appends an event. Returns an error if it would violate chronological
    /// order.
    pub fn push(&mut self, event: Event) -> Result<()> {
        if let Some(last) = self.events.last() {
            if event.time < last.time {
                return Err(TgError::InvalidEvent(format!(
                    "event at {} appended after event at {}",
                    event.time, last.time
                )));
            }
        }
        self.events.push(event);
        Ok(())
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the list holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, in chronological order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the list and returns its events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Timestamp of the first event, if any.
    pub fn start_time(&self) -> Option<Timestamp> {
        self.events.first().map(|e| e.time)
    }

    /// Timestamp of the last event, if any.
    pub fn end_time(&self) -> Option<Timestamp> {
        self.events.last().map(|e| e.time)
    }

    /// Index of the first event with `time > t` (i.e. the length of the
    /// prefix that is applied for a query "as of `t`").
    pub fn partition_point_after(&self, t: Timestamp) -> usize {
        self.events.partition_point(|e| e.time <= t)
    }

    /// The prefix of events with `time <= t`.
    pub fn prefix_at(&self, t: Timestamp) -> &[Event] {
        &self.events[..self.partition_point_after(t)]
    }

    /// The suffix of events with `time > t`.
    pub fn suffix_after(&self, t: Timestamp) -> &[Event] {
        &self.events[self.partition_point_after(t)..]
    }

    /// Events with `start <= time < end`.
    pub fn slice_range(&self, start: Timestamp, end: Timestamp) -> &[Event] {
        let lo = self.events.partition_point(|e| e.time < start);
        let hi = self.events.partition_point(|e| e.time < end);
        &self.events[lo..hi]
    }

    /// Applies to `snapshot` all events with `time <= t`, in forward order.
    pub fn apply_prefix_forward(&self, snapshot: &mut Snapshot, t: Timestamp) -> Result<()> {
        snapshot.apply_events_forward(self.prefix_at(t))
    }

    /// Undoes from `snapshot` all events with `time > t` (applies them
    /// backwards, latest first).
    pub fn apply_suffix_backward(&self, snapshot: &mut Snapshot, t: Timestamp) -> Result<()> {
        snapshot.apply_events_backward(self.suffix_after(t))
    }

    /// Applies every event of the list in forward order.
    pub fn apply_all_forward(&self, snapshot: &mut Snapshot) -> Result<()> {
        snapshot.apply_events_forward(&self.events)
    }

    /// Splits the list into consecutive chunks of at most `chunk_len` events.
    /// The last chunk may be shorter. An empty list yields no chunks.
    pub fn split_into_chunks(&self, chunk_len: usize) -> Vec<EventList> {
        assert!(chunk_len > 0, "chunk_len must be positive");
        self.events
            .chunks(chunk_len)
            .map(|c| EventList { events: c.to_vec() })
            .collect()
    }

    /// Partitions the events by columnar category (structure / node-attr /
    /// edge-attr / transient), preserving chronological order within each.
    pub fn split_by_category(&self) -> [EventList; 4] {
        let mut out = [
            EventList::new(),
            EventList::new(),
            EventList::new(),
            EventList::new(),
        ];
        for ev in &self.events {
            let idx = match ev.category() {
                EventCategory::Structure => 0,
                EventCategory::NodeAttr => 1,
                EventCategory::EdgeAttr => 2,
                EventCategory::Transient => 3,
            };
            out[idx].events.push(ev.clone());
        }
        out
    }

    /// Merges per-category lists back into one chronologically ordered list.
    pub fn merge_categories(parts: &[EventList]) -> EventList {
        let mut all: Vec<Event> = parts
            .iter()
            .flat_map(|p| p.events.iter().cloned())
            .collect();
        all.sort_by_key(|e| e.time);
        EventList { events: all }
    }

    /// Events restricted to the given categories, preserving order.
    pub fn filter_categories(&self, categories: &[EventCategory]) -> EventList {
        EventList {
            events: self
                .events
                .iter()
                .filter(|e| categories.contains(&e.category()))
                .cloned()
                .collect(),
        }
    }

    /// Number of insert events (see [`Event::is_insert`]).
    pub fn insert_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_insert()).count()
    }

    /// Number of delete events (see [`Event::is_delete`]).
    pub fn delete_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_delete()).count()
    }

    /// Number of transient events.
    pub fn transient_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_transient()).count()
    }

    /// Approximate serialized size in bytes.
    pub fn approx_size(&self) -> usize {
        self.events.iter().map(Event::approx_size).sum()
    }

    /// Approximate serialized size in bytes of only the given categories.
    pub fn approx_size_of(&self, categories: &[EventCategory]) -> usize {
        self.events
            .iter()
            .filter(|e| categories.contains(&e.category()))
            .map(Event::approx_size)
            .sum()
    }
}

impl FromIterator<Event> for EventList {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        EventList::from_events(iter.into_iter().collect())
    }
}

impl IntoIterator for EventList {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrValue;

    fn list() -> EventList {
        EventList::from_events(vec![
            Event::add_node(1, 1),
            Event::add_node(2, 2),
            Event::add_edge(3, 10, 1, 2),
            Event::set_node_attr(4, 1, "k", None, Some(AttrValue::Int(5))),
            Event::transient_edge(5, 1, 2, None),
            Event::delete_edge(6, 10, 1, 2),
        ])
    }

    #[test]
    fn from_events_sorts_by_time() {
        let l = EventList::from_events(vec![
            Event::add_node(5, 3),
            Event::add_node(1, 1),
            Event::add_node(3, 2),
        ]);
        let times: Vec<i64> = l.events().iter().map(|e| e.time.raw()).collect();
        assert_eq!(times, vec![1, 3, 5]);
        assert_eq!(l.start_time(), Some(Timestamp(1)));
        assert_eq!(l.end_time(), Some(Timestamp(5)));
    }

    #[test]
    fn push_enforces_chronology() {
        let mut l = EventList::new();
        l.push(Event::add_node(1, 1)).unwrap();
        l.push(Event::add_node(1, 2)).unwrap(); // same time ok
        assert!(l.push(Event::add_node(0, 3)).is_err());
    }

    #[test]
    fn prefix_suffix_partition() {
        let l = list();
        assert_eq!(l.prefix_at(Timestamp(3)).len(), 3);
        assert_eq!(l.suffix_after(Timestamp(3)).len(), 3);
        assert_eq!(l.prefix_at(Timestamp(0)).len(), 0);
        assert_eq!(l.prefix_at(Timestamp(100)).len(), 6);
        assert_eq!(l.slice_range(Timestamp(2), Timestamp(5)).len(), 3);
    }

    #[test]
    fn forward_prefix_then_backward_suffix_consistency() {
        let l = list();
        // state at t=4 computed two ways: forward from empty, and backward
        // from the full state.
        let mut forward = Snapshot::new();
        l.apply_prefix_forward(&mut forward, Timestamp(4)).unwrap();

        let mut backward = Snapshot::new();
        l.apply_all_forward(&mut backward).unwrap();
        l.apply_suffix_backward(&mut backward, Timestamp(4))
            .unwrap();

        assert_eq!(forward, backward);
        assert!(forward.has_edge(crate::EdgeId(10)));
    }

    #[test]
    fn chunking_covers_all_events() {
        let l = list();
        let chunks = l.split_into_chunks(4);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[1].len(), 2);
        let total: usize = chunks.iter().map(EventList::len).sum();
        assert_eq!(total, l.len());
        assert!(EventList::new().split_into_chunks(3).is_empty());
    }

    #[test]
    fn category_split_and_merge_round_trip() {
        let l = list();
        let parts = l.split_by_category();
        assert_eq!(parts[0].len(), 4); // structure
        assert_eq!(parts[1].len(), 1); // node attr
        assert_eq!(parts[2].len(), 0); // edge attr
        assert_eq!(parts[3].len(), 1); // transient
        let merged = EventList::merge_categories(&parts);
        assert_eq!(merged, l);
    }

    #[test]
    fn filter_categories_selects_subset() {
        let l = list();
        let structure_only = l.filter_categories(&[EventCategory::Structure]);
        assert_eq!(structure_only.len(), 4);
        assert!(structure_only.approx_size() < l.approx_size());
        assert_eq!(
            l.approx_size_of(&[EventCategory::Structure]),
            structure_only.approx_size()
        );
    }

    #[test]
    fn insert_delete_transient_counts() {
        let l = list();
        assert_eq!(l.insert_count(), 4);
        assert_eq!(l.delete_count(), 1);
        assert_eq!(l.transient_count(), 1);
    }
}
