//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The hot maps in this workspace are keyed by [`crate::NodeId`] / [`crate::EdgeId`]
//! (plain `u64` newtypes). The default SipHash hasher of `std::collections::HashMap`
//! is a poor fit for such keys, so we provide an FxHash-style multiply-xor
//! hasher (the same family used by rustc) without pulling in an external crate.
//!
//! The hasher is *not* HashDoS resistant; it must only be used for internal
//! ids, never for untrusted external strings used as map keys in a server
//! context. Attribute maps keyed by user-provided strings keep the default
//! hasher for this reason.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hash family (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` using [`FxHasher`]. Drop-in replacement for id-keyed maps.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` using [`FxHasher`]. Drop-in replacement for id-keyed sets.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Hash a single `u64` to a well-mixed `u64`.
///
/// Used wherever the paper calls for "a hash function that maps the events to
/// 0 or 1" (the Skewed/Balanced/Mixed differential functions of Table 2) and
/// for hash partitioning of the node-id space (Section 4.2). The function is
/// deterministic across runs and platforms so that index construction is
/// reproducible.
#[inline]
pub fn hash_u64(value: u64) -> u64 {
    // splitmix64 finalizer: good avalanche behaviour, cheap, stable.
    let mut z = value.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a `u64` key to a pseudo-random fraction in `[0, 1)`.
///
/// Used to decide whether an element participates in an `r`-fraction sample
/// (Skewed / Mixed / Balanced differential functions).
#[inline]
pub fn hash_fraction(value: u64) -> f64 {
    // Take the top 53 bits so the fraction is uniform in [0, 1).
    (hash_u64(value) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fxhashmap_works_like_hashmap() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hash_u64_is_deterministic_and_mixes() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_ne!(hash_u64(42), hash_u64(43));
        // Adjacent inputs should differ in many bits.
        let d = (hash_u64(1) ^ hash_u64(2)).count_ones();
        assert!(d > 10, "poor avalanche: {d} bits differ");
    }

    #[test]
    fn hash_fraction_in_unit_interval() {
        for v in 0..1000u64 {
            let f = hash_fraction(v);
            assert!((0.0..1.0).contains(&f), "{f} out of range");
        }
    }

    #[test]
    fn hash_fraction_is_roughly_uniform() {
        let n = 10_000u64;
        let below_half = (0..n).filter(|&v| hash_fraction(v) < 0.5).count();
        let ratio = below_half as f64 / n as f64;
        assert!((0.45..0.55).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn string_hashing_differs_by_content() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        let h = |s: &str| bh.hash_one(s);
        assert_ne!(h("abc"), h("abd"));
        assert_eq!(h("abc"), h("abc"));
    }
}
