//! Identifiers and discrete timestamps.
//!
//! Nodes and edges are assigned unique ids at creation time. Ids are never
//! reassigned: a deletion followed by a re-insertion of "the same" entity
//! yields a new id (Section 3.1 of the paper). The mapping from external,
//! application-specific keys (user names, paper titles, ...) to internal ids
//! is the job of the `QueryManager` lookup table in the facade crate.

use std::fmt;

/// Internal identifier of a node. Stable for the lifetime of the trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u64);

/// Internal identifier of an edge. Stable for the lifetime of the trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u64);

/// Discrete time point. The paper assumes discrete time; we use a signed
/// 64-bit value so that traces may use seconds-since-epoch, event counters,
/// or years interchangeably.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

impl NodeId {
    /// Raw value of the id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl EdgeId {
    /// Raw value of the id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl Timestamp {
    /// The smallest representable time point.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The largest representable time point.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Raw value of the timestamp.
    #[inline]
    pub fn raw(self) -> i64 {
        self.0
    }

    /// The immediately following time point, saturating at [`Timestamp::MAX`].
    #[inline]
    pub fn next(self) -> Timestamp {
        Timestamp(self.0.saturating_add(1))
    }

    /// The immediately preceding time point, saturating at [`Timestamp::MIN`].
    #[inline]
    pub fn prev(self) -> Timestamp {
        Timestamp(self.0.saturating_sub(1))
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl From<u64> for EdgeId {
    fn from(v: u64) -> Self {
        EdgeId(v)
    }
}

impl From<i64> for Timestamp {
    fn from(v: i64) -> Self {
        Timestamp(v)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(10) > EdgeId(9));
        assert_eq!(NodeId::from(7).raw(), 7);
        assert_eq!(EdgeId::from(7).raw(), 7);
    }

    #[test]
    fn timestamp_next_prev() {
        assert_eq!(Timestamp(5).next(), Timestamp(6));
        assert_eq!(Timestamp(5).prev(), Timestamp(4));
        assert_eq!(Timestamp::MAX.next(), Timestamp::MAX);
        assert_eq!(Timestamp::MIN.prev(), Timestamp::MIN);
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(format!("{}", NodeId(3)), "N3");
        assert_eq!(format!("{}", EdgeId(4)), "E4");
        assert_eq!(format!("{}", Timestamp(-2)), "-2");
        assert_eq!(format!("{:?}", Timestamp(9)), "t9");
    }
}
