//! # tgraph — temporal graph data model
//!
//! This crate provides the data model shared by every component of the
//! historical graph database described in *Khurana & Deshpande, "Efficient
//! Snapshot Retrieval over Historical Graph Data" (ICDE 2013)*:
//!
//! * [`NodeId`], [`EdgeId`], [`Timestamp`] — identifiers and discrete time,
//! * [`AttrValue`] / attribute maps — schema-less attribute lists on nodes and edges,
//! * [`Event`] — the atomic, bidirectional unit of change (Section 3.1 of the paper),
//! * [`EventList`] — a chronologically ordered list of events,
//! * [`Snapshot`] — a materialized graph as of one time point,
//! * [`Delta`] — the columnar difference between two snapshots
//!   (split into structure / node-attribute / edge-attribute components, Section 4.2),
//! * [`AttrOptions`] — the `"+node:all-node:salary+edge:name"` retrieval options of Table 1,
//! * [`TimeExpression`] — multinomial Boolean expressions over time points (Section 3.2.1),
//! * [`codec`] — a compact, dependency-free binary encoding used by the storage layer.
//!
//! The crate deliberately knows nothing about *how* history is indexed; that
//! is the job of the `deltagraph` crate. Everything here is pure data plus
//! the algebra needed by the index: applying events forwards and backwards,
//! computing and applying deltas, and intersecting/merging snapshots.

pub mod attr;
pub mod attr_options;
pub mod codec;
pub mod delta;
pub mod error;
pub mod event;
pub mod eventlist;
pub mod fxhash;
pub mod ids;
pub mod snapshot;
pub mod time_expr;

pub use attr::{AttrMap, AttrValue};
pub use attr_options::{AttrOptions, AttrSelection};
pub use delta::{Delta, DeltaComponent, EdgeRecord, StructDelta};
pub use error::{Result, TgError};
pub use event::{Event, EventKind};
pub use eventlist::EventList;
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use ids::{EdgeId, NodeId, Timestamp};
pub use snapshot::{EdgeData, NodeData, Snapshot};
pub use time_expr::{BoolExpr, TimeExpression};
