//! A materialized graph snapshot as of a single time point.
//!
//! A [`Snapshot`] is the in-memory, indexed representation of a graph:
//! node and edge tables plus an adjacency index for traversal. Snapshots are
//! what the analytics layer operates on, what the DeltaGraph reconstructs,
//! and what deltas are computed between.

use std::collections::BTreeMap;

use crate::attr::{attr_map_size, AttrMap, AttrValue};
use crate::error::{Result, TgError};
use crate::event::{Event, EventKind};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::{EdgeId, NodeId};

/// Per-node payload: the node's attribute map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeData {
    /// Attribute name → value.
    pub attrs: AttrMap,
}

/// Per-edge payload: endpoints, direction, and attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeData {
    /// Source endpoint (or one endpoint of an undirected edge).
    pub src: NodeId,
    /// Destination endpoint (or the other endpoint).
    pub dst: NodeId,
    /// Whether the edge is directed.
    pub directed: bool,
    /// Attribute name → value.
    pub attrs: AttrMap,
}

impl EdgeData {
    /// The endpoint opposite to `n`, if `n` is an endpoint of this edge.
    pub fn other_endpoint(&self, n: NodeId) -> Option<NodeId> {
        if self.src == n {
            Some(self.dst)
        } else if self.dst == n {
            Some(self.src)
        } else {
            None
        }
    }
}

/// A graph as of a single time point.
///
/// Equality compares the node and edge tables (ids, endpoints, attributes);
/// the adjacency index is derived state and is excluded — two snapshots built
/// by different event orders compare equal if they describe the same graph.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    nodes: FxHashMap<NodeId, NodeData>,
    edges: FxHashMap<EdgeId, EdgeData>,
    /// Outgoing adjacency: for undirected edges both endpoints index the edge,
    /// for directed edges only the source does.
    adj: FxHashMap<NodeId, Vec<(NodeId, EdgeId)>>,
}

impl PartialEq for Snapshot {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.edges == other.edges
    }
}

impl Eq for Snapshot {}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the snapshot has no nodes and no edges.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }

    /// Total number of graph elements: nodes + edges + attribute entries.
    /// This is the "size" the paper's analytical model reasons about.
    pub fn element_count(&self) -> usize {
        let node_attrs: usize = self.nodes.values().map(|n| n.attrs.len()).sum();
        let edge_attrs: usize = self.edges.values().map(|e| e.attrs.len()).sum();
        self.nodes.len() + self.edges.len() + node_attrs + edge_attrs
    }

    /// Whether the node is present.
    pub fn has_node(&self, n: NodeId) -> bool {
        self.nodes.contains_key(&n)
    }

    /// Whether the edge is present.
    pub fn has_edge(&self, e: EdgeId) -> bool {
        self.edges.contains_key(&e)
    }

    /// The node payload, if present.
    pub fn node(&self, n: NodeId) -> Option<&NodeData> {
        self.nodes.get(&n)
    }

    /// The edge payload, if present.
    pub fn edge(&self, e: EdgeId) -> Option<&EdgeData> {
        self.edges.get(&e)
    }

    /// Iterator over `(NodeId, &NodeData)`.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeData)> {
        self.nodes.iter().map(|(k, v)| (*k, v))
    }

    /// Iterator over `(EdgeId, &EdgeData)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &EdgeData)> {
        self.edges.iter().map(|(k, v)| (*k, v))
    }

    /// Node ids, in unspecified order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Edge ids, in unspecified order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.keys().copied()
    }

    /// Outgoing neighbors of `n` as `(neighbor, edge)` pairs. For undirected
    /// edges both endpoints see each other; for directed edges only the
    /// source sees the destination. Returns an empty slice for unknown nodes.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, EdgeId)] {
        self.adj.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Out-degree of `n` (counting undirected edges once per endpoint).
    pub fn degree(&self, n: NodeId) -> usize {
        self.neighbors(n).len()
    }

    /// The first edge found connecting `a` and `b` in either direction, if any.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.neighbors(a)
            .iter()
            .find(|(nbr, _)| *nbr == b)
            .map(|(_, e)| *e)
            .or_else(|| {
                // A directed edge b -> a is not in a's adjacency; check b's.
                self.neighbors(b)
                    .iter()
                    .find(|(nbr, _)| *nbr == a)
                    .map(|(_, e)| *e)
            })
    }

    // ------------------------------------------------------------------
    // Mutation primitives
    // ------------------------------------------------------------------

    /// Adds a node. Returns an error if it already exists.
    pub fn add_node(&mut self, n: NodeId) -> Result<()> {
        if self.nodes.contains_key(&n) {
            return Err(TgError::InvalidEvent(format!("node {n} already exists")));
        }
        self.nodes.insert(n, NodeData::default());
        Ok(())
    }

    /// Inserts a node if absent (no error when present). Used by overlays and
    /// differential-function combinators where idempotence is wanted.
    pub fn ensure_node(&mut self, n: NodeId) {
        self.nodes.entry(n).or_default();
    }

    /// Removes a node and (defensively) any incident edges. Returns an error
    /// if the node does not exist.
    pub fn remove_node(&mut self, n: NodeId) -> Result<()> {
        if self.nodes.remove(&n).is_none() {
            return Err(TgError::InvalidEvent(format!("node {n} does not exist")));
        }
        // Well-formed event streams delete incident edges first, but cascade
        // here so the structure never holds dangling adjacency.
        let incident: Vec<EdgeId> = self
            .edges
            .iter()
            .filter(|(_, d)| d.src == n || d.dst == n)
            .map(|(e, _)| *e)
            .collect();
        for e in incident {
            let _ = self.remove_edge(e);
        }
        self.adj.remove(&n);
        Ok(())
    }

    /// Adds an edge; creates missing endpoints implicitly (the generators in
    /// `datagen` always emit node-add events first, but deltas produced by
    /// sampling differential functions may not preserve that ordering).
    pub fn add_edge(&mut self, e: EdgeId, src: NodeId, dst: NodeId, directed: bool) -> Result<()> {
        if self.edges.contains_key(&e) {
            return Err(TgError::InvalidEvent(format!("edge {e} already exists")));
        }
        self.ensure_node(src);
        self.ensure_node(dst);
        self.edges.insert(
            e,
            EdgeData {
                src,
                dst,
                directed,
                attrs: AttrMap::new(),
            },
        );
        self.adj.entry(src).or_default().push((dst, e));
        if !directed && src != dst {
            self.adj.entry(dst).or_default().push((src, e));
        }
        Ok(())
    }

    /// Removes an edge. Returns an error if it does not exist.
    pub fn remove_edge(&mut self, e: EdgeId) -> Result<()> {
        let data = self
            .edges
            .remove(&e)
            .ok_or_else(|| TgError::InvalidEvent(format!("edge {e} does not exist")))?;
        if let Some(list) = self.adj.get_mut(&data.src) {
            list.retain(|(_, id)| *id != e);
        }
        if !data.directed && data.src != data.dst {
            if let Some(list) = self.adj.get_mut(&data.dst) {
                list.retain(|(_, id)| *id != e);
            }
        }
        Ok(())
    }

    /// Sets (or with `None` removes) a node attribute. The node must exist.
    pub fn set_node_attr(&mut self, n: NodeId, key: &str, value: Option<AttrValue>) -> Result<()> {
        let node = self
            .nodes
            .get_mut(&n)
            .ok_or_else(|| TgError::InvalidEvent(format!("node {n} does not exist")))?;
        match value {
            Some(v) => {
                node.attrs.insert(key.to_owned(), v);
            }
            None => {
                node.attrs.remove(key);
            }
        }
        Ok(())
    }

    /// Sets (or with `None` removes) an edge attribute. The edge must exist.
    pub fn set_edge_attr(&mut self, e: EdgeId, key: &str, value: Option<AttrValue>) -> Result<()> {
        let edge = self
            .edges
            .get_mut(&e)
            .ok_or_else(|| TgError::InvalidEvent(format!("edge {e} does not exist")))?;
        match value {
            Some(v) => {
                edge.attrs.insert(key.to_owned(), v);
            }
            None => {
                edge.attrs.remove(key);
            }
        }
        Ok(())
    }

    /// Convenience read accessor for a node attribute.
    pub fn node_attr(&self, n: NodeId, key: &str) -> Option<&AttrValue> {
        self.nodes.get(&n).and_then(|d| d.attrs.get(key))
    }

    /// Convenience read accessor for an edge attribute.
    pub fn edge_attr(&self, e: EdgeId, key: &str) -> Option<&AttrValue> {
        self.edges.get(&e).and_then(|d| d.attrs.get(key))
    }

    // ------------------------------------------------------------------
    // Event application (forward and backward)
    // ------------------------------------------------------------------

    /// Applies a single event in the forward direction of time.
    /// Transient events are no-ops (they never affect snapshots).
    pub fn apply_forward(&mut self, ev: &Event) -> Result<()> {
        match &ev.kind {
            EventKind::AddNode { node } => self.add_node(*node),
            EventKind::DeleteNode { node } => self.remove_node(*node),
            EventKind::AddEdge {
                edge,
                src,
                dst,
                directed,
            } => self.add_edge(*edge, *src, *dst, *directed),
            EventKind::DeleteEdge { edge, .. } => self.remove_edge(*edge),
            EventKind::SetNodeAttr { node, key, new, .. } => {
                self.set_node_attr(*node, key, new.clone())
            }
            EventKind::SetEdgeAttr { edge, key, new, .. } => {
                self.set_edge_attr(*edge, key, new.clone())
            }
            EventKind::TransientEdge { .. } | EventKind::TransientNode { .. } => Ok(()),
        }
    }

    /// Applies a single event in the backward direction of time (undoes it).
    pub fn apply_backward(&mut self, ev: &Event) -> Result<()> {
        match &ev.kind {
            EventKind::AddNode { node } => self.remove_node(*node),
            EventKind::DeleteNode { node } => self.add_node(*node),
            EventKind::AddEdge { edge, .. } => self.remove_edge(*edge),
            EventKind::DeleteEdge {
                edge,
                src,
                dst,
                directed,
            } => self.add_edge(*edge, *src, *dst, *directed),
            EventKind::SetNodeAttr { node, key, old, .. } => {
                self.set_node_attr(*node, key, old.clone())
            }
            EventKind::SetEdgeAttr { edge, key, old, .. } => {
                self.set_edge_attr(*edge, key, old.clone())
            }
            EventKind::TransientEdge { .. } | EventKind::TransientNode { .. } => Ok(()),
        }
    }

    /// Applies a sequence of events in forward chronological order.
    pub fn apply_events_forward<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a Event>,
    ) -> Result<()> {
        for ev in events {
            self.apply_forward(ev)?;
        }
        Ok(())
    }

    /// Applies a sequence of events in the backward direction. The events
    /// must be supplied in forward chronological order; they are undone from
    /// the last to the first.
    pub fn apply_events_backward<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a Event, IntoIter: DoubleEndedIterator>,
    ) -> Result<()> {
        for ev in events.into_iter().rev() {
            self.apply_backward(ev)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Set-style combinators used by differential functions
    // ------------------------------------------------------------------

    /// Element-wise intersection: a node/edge is kept if present in both; an
    /// attribute entry is kept if present with an identical value in both.
    /// Edges are only kept if both endpoints survive the intersection.
    pub fn intersect(&self, other: &Snapshot) -> Snapshot {
        let mut out = Snapshot::new();
        for (n, data) in &self.nodes {
            if let Some(other_data) = other.nodes.get(n) {
                out.nodes.insert(
                    *n,
                    NodeData {
                        attrs: intersect_attrs(&data.attrs, &other_data.attrs),
                    },
                );
            }
        }
        for (e, data) in &self.edges {
            if let Some(other_data) = other.edges.get(e) {
                if out.nodes.contains_key(&data.src) && out.nodes.contains_key(&data.dst) {
                    let merged = EdgeData {
                        src: data.src,
                        dst: data.dst,
                        directed: data.directed,
                        attrs: intersect_attrs(&data.attrs, &other_data.attrs),
                    };
                    out.adj.entry(data.src).or_default().push((data.dst, *e));
                    if !data.directed && data.src != data.dst {
                        out.adj.entry(data.dst).or_default().push((data.src, *e));
                    }
                    out.edges.insert(*e, merged);
                }
            }
        }
        out
    }

    /// Element-wise union: every node/edge present in either snapshot is kept;
    /// attribute conflicts are resolved in favour of `other` (the later
    /// argument), matching the Union differential function of Table 2.
    pub fn union(&self, other: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (n, data) in &other.nodes {
            let entry = out.nodes.entry(*n).or_default();
            for (k, v) in &data.attrs {
                entry.attrs.insert(k.clone(), v.clone());
            }
        }
        for (e, data) in &other.edges {
            if !out.edges.contains_key(e) {
                out.ensure_node(data.src);
                out.ensure_node(data.dst);
                out.adj.entry(data.src).or_default().push((data.dst, *e));
                if !data.directed && data.src != data.dst {
                    out.adj.entry(data.dst).or_default().push((data.src, *e));
                }
                out.edges.insert(*e, data.clone());
            } else {
                let entry = out.edges.get_mut(e).expect("just checked");
                for (k, v) in &data.attrs {
                    entry.attrs.insert(k.clone(), v.clone());
                }
            }
        }
        out
    }

    /// Returns a copy of this snapshot keeping only the attributes selected
    /// by `opts` (the structure is always kept). Used when a snapshot that is
    /// already in memory (a materialized DeltaGraph node, the current graph)
    /// serves a query that asked for fewer attributes.
    pub fn project_attrs(&self, opts: &crate::attr_options::AttrOptions) -> Snapshot {
        let mut out = self.clone();
        if !opts.node.is_all() {
            for data in out.nodes.values_mut() {
                data.attrs.retain(|k, _| opts.wants_node_attr(k));
            }
        }
        if !opts.edge.is_all() {
            for data in out.edges.values_mut() {
                data.attrs.retain(|k, _| opts.wants_edge_attr(k));
            }
        }
        out
    }

    /// Approximate memory footprint in bytes (node/edge tables, attribute
    /// payloads, adjacency). Used for the Figure 7(b) / 8(a) / 10(b)
    /// memory-consumption experiments.
    pub fn approx_memory(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .values()
            .map(|d| 48 + attr_map_size(&d.attrs))
            .sum();
        let edge_bytes: usize = self
            .edges
            .values()
            .map(|d| 64 + attr_map_size(&d.attrs))
            .sum();
        let adj_bytes: usize = self
            .adj
            .values()
            .map(|v| 32 + v.len() * std::mem::size_of::<(NodeId, EdgeId)>())
            .sum();
        node_bytes + edge_bytes + adj_bytes
    }

    /// Degree histogram `degree → count`, used by dataset-shape tests.
    pub fn degree_histogram(&self) -> BTreeMap<usize, usize> {
        let mut hist = BTreeMap::new();
        for n in self.nodes.keys() {
            *hist.entry(self.degree(*n)).or_insert(0) += 1;
        }
        hist
    }

    /// The set of node ids, as a hash set (convenience for tests/analytics).
    pub fn node_id_set(&self) -> FxHashSet<NodeId> {
        self.nodes.keys().copied().collect()
    }
}

fn intersect_attrs(a: &AttrMap, b: &AttrMap) -> AttrMap {
    a.iter()
        .filter(|(k, v)| b.get(*k) == Some(v))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrValue;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new();
        s.add_node(NodeId(1)).unwrap();
        s.add_node(NodeId(2)).unwrap();
        s.add_node(NodeId(3)).unwrap();
        s.add_edge(EdgeId(10), NodeId(1), NodeId(2), false).unwrap();
        s.add_edge(EdgeId(11), NodeId(2), NodeId(3), true).unwrap();
        s.set_node_attr(NodeId(1), "name", Some(AttrValue::from("a")))
            .unwrap();
        s.set_edge_attr(EdgeId(10), "w", Some(AttrValue::from(2i64)))
            .unwrap();
        s
    }

    #[test]
    fn basic_construction_and_counts() {
        let s = sample();
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.edge_count(), 2);
        assert!(s.has_node(NodeId(1)));
        assert!(!s.has_node(NodeId(9)));
        assert_eq!(s.element_count(), 3 + 2 + 1 + 1);
    }

    #[test]
    fn adjacency_respects_direction() {
        let s = sample();
        // undirected edge 10 visible from both sides
        assert!(s.neighbors(NodeId(1)).contains(&(NodeId(2), EdgeId(10))));
        assert!(s.neighbors(NodeId(2)).contains(&(NodeId(1), EdgeId(10))));
        // directed edge 11 only from its source
        assert!(s.neighbors(NodeId(2)).contains(&(NodeId(3), EdgeId(11))));
        assert!(!s.neighbors(NodeId(3)).contains(&(NodeId(2), EdgeId(11))));
        assert_eq!(s.edge_between(NodeId(3), NodeId(2)), Some(EdgeId(11)));
        assert_eq!(s.edge_between(NodeId(1), NodeId(3)), None);
    }

    #[test]
    fn duplicate_node_and_edge_are_errors() {
        let mut s = sample();
        assert!(s.add_node(NodeId(1)).is_err());
        assert!(s.add_edge(EdgeId(10), NodeId(1), NodeId(3), false).is_err());
        assert!(s.remove_edge(EdgeId(99)).is_err());
        assert!(s.remove_node(NodeId(99)).is_err());
    }

    #[test]
    fn remove_node_cascades_incident_edges() {
        let mut s = sample();
        s.remove_node(NodeId(2)).unwrap();
        assert!(!s.has_edge(EdgeId(10)));
        assert!(!s.has_edge(EdgeId(11)));
        assert!(s.neighbors(NodeId(1)).is_empty());
    }

    #[test]
    fn attribute_set_and_remove() {
        let mut s = sample();
        assert_eq!(s.node_attr(NodeId(1), "name"), Some(&AttrValue::from("a")));
        s.set_node_attr(NodeId(1), "name", None).unwrap();
        assert_eq!(s.node_attr(NodeId(1), "name"), None);
        assert!(s
            .set_node_attr(NodeId(77), "x", Some(AttrValue::Int(1)))
            .is_err());
        assert!(s
            .set_edge_attr(EdgeId(77), "x", Some(AttrValue::Int(1)))
            .is_err());
    }

    #[test]
    fn forward_then_backward_restores_snapshot() {
        let mut s = sample();
        let before = s.clone();
        let events = vec![
            Event::add_node(5, 7),
            Event::add_edge(5, 20, 7, 1),
            Event::set_node_attr(6, 7, "k", None, Some(AttrValue::Int(3))),
            Event::set_node_attr(7, 7, "k", Some(AttrValue::Int(3)), Some(AttrValue::Int(4))),
            Event::delete_edge(8, 20, 7, 1),
        ];
        s.apply_events_forward(&events).unwrap();
        assert!(s.has_node(NodeId(7)));
        assert_eq!(s.node_attr(NodeId(7), "k"), Some(&AttrValue::Int(4)));
        s.apply_events_backward(&events).unwrap();
        assert_eq!(s, before);
    }

    #[test]
    fn transient_events_are_noops() {
        let mut s = sample();
        let before = s.clone();
        let ev = Event::transient_edge(9, 1, 2, Some(AttrValue::from("hello")));
        s.apply_forward(&ev).unwrap();
        assert_eq!(s, before);
        s.apply_backward(&ev).unwrap();
        assert_eq!(s, before);
    }

    #[test]
    fn equality_ignores_adjacency_order() {
        let mut a = Snapshot::new();
        a.add_node(NodeId(1)).unwrap();
        a.add_node(NodeId(2)).unwrap();
        a.add_node(NodeId(3)).unwrap();
        a.add_edge(EdgeId(1), NodeId(1), NodeId(2), false).unwrap();
        a.add_edge(EdgeId(2), NodeId(1), NodeId(3), false).unwrap();

        let mut b = Snapshot::new();
        b.add_node(NodeId(3)).unwrap();
        b.add_node(NodeId(2)).unwrap();
        b.add_node(NodeId(1)).unwrap();
        b.add_edge(EdgeId(2), NodeId(1), NodeId(3), false).unwrap();
        b.add_edge(EdgeId(1), NodeId(1), NodeId(2), false).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn intersection_keeps_common_elements_only() {
        let a = sample();
        let mut b = sample();
        b.remove_edge(EdgeId(11)).unwrap();
        b.set_node_attr(NodeId(1), "name", Some(AttrValue::from("different")))
            .unwrap();
        let i = a.intersect(&b);
        assert_eq!(i.node_count(), 3);
        assert!(i.has_edge(EdgeId(10)));
        assert!(!i.has_edge(EdgeId(11)));
        // conflicting attribute value dropped
        assert_eq!(i.node_attr(NodeId(1), "name"), None);
        // matching edge attribute retained
        assert_eq!(i.edge_attr(EdgeId(10), "w"), Some(&AttrValue::Int(2)));
    }

    #[test]
    fn union_keeps_everything() {
        let mut a = Snapshot::new();
        a.add_node(NodeId(1)).unwrap();
        let mut b = Snapshot::new();
        b.add_node(NodeId(2)).unwrap();
        b.add_edge(EdgeId(5), NodeId(2), NodeId(3), false).unwrap();
        let u = a.union(&b);
        assert_eq!(u.node_count(), 3);
        assert!(u.has_edge(EdgeId(5)));
        assert!(u.neighbors(NodeId(3)).contains(&(NodeId(2), EdgeId(5))));
    }

    #[test]
    fn project_attrs_strips_unselected_attributes() {
        let s = sample();
        let structure_only = s.project_attrs(&crate::AttrOptions::structure_only());
        assert_eq!(structure_only.node_count(), s.node_count());
        assert_eq!(structure_only.edge_count(), s.edge_count());
        assert_eq!(structure_only.node_attr(NodeId(1), "name"), None);
        assert_eq!(structure_only.edge_attr(EdgeId(10), "w"), None);

        let all = s.project_attrs(&crate::AttrOptions::all());
        assert_eq!(all, s);

        let named = s.project_attrs(&crate::AttrOptions::parse("+node:name").unwrap());
        assert_eq!(
            named.node_attr(NodeId(1), "name"),
            Some(&AttrValue::from("a"))
        );
        assert_eq!(named.edge_attr(EdgeId(10), "w"), None);
    }

    #[test]
    fn memory_accounting_is_monotone() {
        let empty = Snapshot::new().approx_memory();
        let s = sample().approx_memory();
        assert!(s > empty);
    }

    #[test]
    fn degree_histogram_counts_nodes() {
        let s = sample();
        let hist = s.degree_histogram();
        let total: usize = hist.values().sum();
        assert_eq!(total, s.node_count());
    }
}
