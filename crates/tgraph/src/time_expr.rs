//! Time expressions: multinomial Boolean expressions over time points.
//!
//! `GetHistGraph(TimeExpression, ...)` retrieves a *hypothetical* graph whose
//! elements are those satisfying a Boolean expression over membership at `k`
//! time points (Section 3.2.1). For example `t1 ∧ ¬t2` selects the elements
//! that were valid at `t1` but not at `t2`.
//!
//! The expression is evaluated element-wise over the snapshots retrieved for
//! the referenced time points; the facade crate performs the retrieval and
//! calls [`TimeExpression::evaluate_membership`] per element.

use crate::error::{Result, TgError};
use crate::ids::Timestamp;
use crate::snapshot::Snapshot;

/// A Boolean expression over time-point variables, referenced by index into
/// [`TimeExpression::times`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoolExpr {
    /// Membership at the `i`-th time point.
    Var(usize),
    /// Logical negation.
    Not(Box<BoolExpr>),
    /// Logical conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Logical disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// Convenience constructor for `Var`.
    pub fn var(i: usize) -> Self {
        BoolExpr::Var(i)
    }

    /// Convenience constructor for `Not`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: BoolExpr) -> Self {
        BoolExpr::Not(Box::new(e))
    }

    /// Convenience constructor for `And`.
    pub fn and(a: BoolExpr, b: BoolExpr) -> Self {
        BoolExpr::And(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for `Or`.
    pub fn or(a: BoolExpr, b: BoolExpr) -> Self {
        BoolExpr::Or(Box::new(a), Box::new(b))
    }

    /// Evaluates the expression given per-variable truth values.
    pub fn eval(&self, vars: &[bool]) -> Result<bool> {
        match self {
            BoolExpr::Var(i) => vars.get(*i).copied().ok_or_else(|| {
                TgError::InvalidTimeExpression(format!(
                    "variable t{i} out of range (only {} time points)",
                    vars.len()
                ))
            }),
            BoolExpr::Not(e) => Ok(!e.eval(vars)?),
            BoolExpr::And(a, b) => Ok(a.eval(vars)? && b.eval(vars)?),
            BoolExpr::Or(a, b) => Ok(a.eval(vars)? || b.eval(vars)?),
        }
    }

    /// Largest variable index mentioned, if any.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            BoolExpr::Var(i) => Some(*i),
            BoolExpr::Not(e) => e.max_var(),
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => match (a.max_var(), b.max_var()) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            },
        }
    }
}

/// A list of time points plus a Boolean expression over them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeExpression {
    /// The referenced time points `t_0 .. t_{k-1}`.
    pub times: Vec<Timestamp>,
    /// The Boolean expression over those time points.
    pub expr: BoolExpr,
}

impl TimeExpression {
    /// Creates a time expression, validating that every variable referenced
    /// by the expression has a corresponding time point.
    pub fn new(times: Vec<Timestamp>, expr: BoolExpr) -> Result<Self> {
        if let Some(max) = expr.max_var() {
            if max >= times.len() {
                return Err(TgError::InvalidTimeExpression(format!(
                    "expression references t{max} but only {} time points supplied",
                    times.len()
                )));
            }
        }
        Ok(TimeExpression { times, expr })
    }

    /// The shorthand `t_a ∧ ¬t_b` ("valid at `a` but not at `b`").
    pub fn diff(a: impl Into<Timestamp>, b: impl Into<Timestamp>) -> Self {
        TimeExpression {
            times: vec![a.into(), b.into()],
            expr: BoolExpr::and(BoolExpr::var(0), BoolExpr::not(BoolExpr::var(1))),
        }
    }

    /// Evaluates membership of one element given its presence at each time
    /// point (`present[i]` ↔ present at `times[i]`).
    pub fn evaluate_membership(&self, present: &[bool]) -> Result<bool> {
        if present.len() != self.times.len() {
            return Err(TgError::InvalidTimeExpression(format!(
                "expected {} membership bits, got {}",
                self.times.len(),
                present.len()
            )));
        }
        self.expr.eval(present)
    }

    /// Builds the hypothetical graph satisfying this expression from the
    /// snapshots at each referenced time point (`snapshots[i]` is the graph
    /// as of `times[i]`).
    ///
    /// Node membership is evaluated per node, edge membership per edge. The
    /// endpoints of a selected edge are included in the result even when the
    /// nodes themselves do not satisfy the expression (e.g. for `t1 ∧ ¬t2`,
    /// an edge removed between the two time points is returned together with
    /// its — still existing — endpoints), so the output is always a
    /// well-formed graph. Attributes are copied from the latest referenced
    /// snapshot that contains the element.
    pub fn evaluate(&self, snapshots: &[Snapshot]) -> Result<Snapshot> {
        if snapshots.len() != self.times.len() {
            return Err(TgError::InvalidTimeExpression(format!(
                "expected {} snapshots, got {}",
                self.times.len(),
                snapshots.len()
            )));
        }
        let mut out = Snapshot::new();

        // Candidate nodes: union of all snapshots' nodes.
        let mut node_ids: Vec<_> = snapshots.iter().flat_map(|s| s.node_ids()).collect();
        node_ids.sort_unstable();
        node_ids.dedup();
        for n in node_ids {
            let present: Vec<bool> = snapshots.iter().map(|s| s.has_node(n)).collect();
            if self.expr.eval(&present)? {
                out.ensure_node(n);
                // copy attributes from the latest snapshot containing the node
                if let Some(src) = snapshots
                    .iter()
                    .rev()
                    .find(|s| s.has_node(n))
                    .and_then(|s| s.node(n))
                {
                    for (k, v) in &src.attrs {
                        out.set_node_attr(n, k, Some(v.clone()))?;
                    }
                }
            }
        }

        let mut edge_ids: Vec<_> = snapshots.iter().flat_map(|s| s.edge_ids()).collect();
        edge_ids.sort_unstable();
        edge_ids.dedup();
        for e in edge_ids {
            let present: Vec<bool> = snapshots.iter().map(|s| s.has_edge(e)).collect();
            if self.expr.eval(&present)? {
                let data = snapshots
                    .iter()
                    .rev()
                    .find_map(|s| s.edge(e))
                    .expect("edge present in at least one snapshot");
                out.ensure_node(data.src);
                out.ensure_node(data.dst);
                out.add_edge(e, data.src, data.dst, data.directed)?;
                for (k, v) in &data.attrs {
                    out.set_edge_attr(e, k, Some(v.clone()))?;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EdgeId, NodeId};

    fn snap(nodes: &[u64], edges: &[(u64, u64, u64)]) -> Snapshot {
        let mut s = Snapshot::new();
        for &n in nodes {
            s.ensure_node(NodeId(n));
        }
        for &(e, a, b) in edges {
            s.add_edge(EdgeId(e), NodeId(a), NodeId(b), false).unwrap();
        }
        s
    }

    #[test]
    fn expression_validation_catches_out_of_range_vars() {
        let bad = TimeExpression::new(vec![Timestamp(1)], BoolExpr::var(3));
        assert!(bad.is_err());
        let ok = TimeExpression::new(vec![Timestamp(1)], BoolExpr::var(0));
        assert!(ok.is_ok());
    }

    #[test]
    fn eval_basic_boolean_algebra() {
        let e = BoolExpr::or(
            BoolExpr::and(BoolExpr::var(0), BoolExpr::not(BoolExpr::var(1))),
            BoolExpr::var(2),
        );
        assert!(e.eval(&[true, false, false]).unwrap());
        assert!(!e.eval(&[true, true, false]).unwrap());
        assert!(e.eval(&[false, true, true]).unwrap());
        assert_eq!(e.max_var(), Some(2));
        assert!(e.eval(&[true]).is_err());
    }

    #[test]
    fn diff_expression_selects_removed_elements() {
        // t0: nodes 1,2,3 edge (1-2); t1: nodes 1,3 (node 2 and its edge gone)
        let s0 = snap(&[1, 2, 3], &[(10, 1, 2)]);
        let s1 = snap(&[1, 3], &[]);
        let tex = TimeExpression::diff(0i64, 1i64);
        let result = tex.evaluate(&[s0, s1]).unwrap();
        assert!(result.has_node(NodeId(2)));
        // edge 10 was valid at t0 only, so it is part of the difference; its
        // endpoint node 1 (which exists at both times and therefore does not
        // itself satisfy the expression) is pulled in to keep the graph well
        // formed.
        assert!(result.has_edge(EdgeId(10)));
        assert!(result.has_node(NodeId(1)));
    }

    #[test]
    fn intersection_expression_keeps_common_elements() {
        let s0 = snap(&[1, 2], &[(10, 1, 2)]);
        let s1 = snap(&[1, 2, 3], &[(10, 1, 2), (11, 2, 3)]);
        let tex = TimeExpression::new(
            vec![Timestamp(0), Timestamp(1)],
            BoolExpr::and(BoolExpr::var(0), BoolExpr::var(1)),
        )
        .unwrap();
        let result = tex.evaluate(&[s0, s1]).unwrap();
        assert_eq!(result.node_count(), 2);
        assert!(result.has_edge(EdgeId(10)));
        assert!(!result.has_edge(EdgeId(11)));
    }

    #[test]
    fn membership_evaluation_checks_arity() {
        let tex = TimeExpression::diff(0i64, 1i64);
        assert!(tex.evaluate_membership(&[true]).is_err());
        assert!(tex.evaluate_membership(&[true, false]).unwrap());
        assert!(!tex.evaluate_membership(&[true, true]).unwrap());
    }

    #[test]
    fn union_expression_keeps_attributes_from_latest() {
        let mut s0 = snap(&[1], &[]);
        s0.set_node_attr(NodeId(1), "v", Some(crate::AttrValue::Int(1)))
            .unwrap();
        let mut s1 = snap(&[1], &[]);
        s1.set_node_attr(NodeId(1), "v", Some(crate::AttrValue::Int(2)))
            .unwrap();
        let tex = TimeExpression::new(
            vec![Timestamp(0), Timestamp(1)],
            BoolExpr::or(BoolExpr::var(0), BoolExpr::var(1)),
        )
        .unwrap();
        let result = tex.evaluate(&[s0, s1]).unwrap();
        assert_eq!(
            result.node_attr(NodeId(1), "v"),
            Some(&crate::AttrValue::Int(2))
        );
    }
}
