//! An interactive `histql` shell over a freshly built historical graph.
//!
//! ```text
//! cargo run --example histql_shell            # toy trace
//! cargo run --example histql_shell -- --churn # small churn trace
//! ```
//!
//! Type `histql` statements at the prompt (`HELP` lists them, `QUIT`
//! exits). The shell runs the same [`histql::Executor`] the TCP server
//! uses, against an in-memory index.

use std::io::{self, BufRead, Write};

use historygraph::{GraphManager, GraphManagerConfig, SharedGraphManager};
use histql::Executor;

fn main() {
    let churn = std::env::args().any(|a| a == "--churn");
    let (events, label) = if churn {
        let ds = historygraph::datagen::churn_trace(&historygraph::datagen::ChurnConfig::tiny(42));
        (ds.events, "churn trace")
    } else {
        (historygraph::datagen::toy_trace().events, "toy trace")
    };
    let gm = GraphManager::build_in_memory(&events, GraphManagerConfig::default())
        .expect("index construction");
    let (start, end) = gm.index().history_range().expect("non-empty history");
    let shared = SharedGraphManager::new(gm);
    let mut executor = Executor::new(shared);

    println!("histql shell over a {label}: history [{start}, {end}]");
    println!("try: GET GRAPH AT {end} WITH +node:all+edge:all   (HELP for more, QUIT to exit)");

    let stdin = io::stdin();
    loop {
        print!("histql> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        if request.eq_ignore_ascii_case("QUIT") {
            break;
        }
        if request.eq_ignore_ascii_case("HELP") {
            print_help(start.raw(), end.raw());
            continue;
        }
        match executor.execute_line(request) {
            Ok(response) => {
                for l in response.to_lines() {
                    println!("{l}");
                }
            }
            Err(e) => println!("ERR {e}"),
        }
    }
}

fn print_help(start: i64, end: i64) {
    let mid = (start + end) / 2;
    println!(
        "\
GET GRAPH AT {mid} WITH +node:all+edge:all
GET GRAPHS AT {start}, {mid}, {end}
GET GRAPH BETWEEN {start} AND {end}
GET GRAPH MATCHING {mid} AND NOT {end}
DIFF {end} {mid}
BIND alice 1
NODE alice AT {mid}
HISTORY NODE alice FROM {start} TO {end}
APPEND NODE {next} 777
STATS
RELEASE ALL
QUIT",
        next = end + 1
    );
}
