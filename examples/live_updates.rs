//! Maintaining the current graph while serving historical queries: appending
//! new events, watching them become visible, and using memory
//! materialization to speed up repeated access to a busy period.
//!
//! Run with `cargo run --release --example live_updates`.

use std::time::Instant;

use historygraph::datagen::{dblp_like, DblpConfig};
use historygraph::deltagraph::DeltaGraphConfig;
use historygraph::tgraph::{Event, Timestamp};
use historygraph::{GraphManager, GraphManagerConfig};

fn main() {
    let dataset = dblp_like(&DblpConfig {
        total_edges: 3_000,
        ..DblpConfig::default()
    });
    let mut gm = GraphManager::build_in_memory(
        &dataset.events,
        GraphManagerConfig::default().with_index(DeltaGraphConfig::new(500, 4)),
    )
    .expect("build index");

    // Append live updates: a burst of new collaborations "today".
    let today = dataset.end_time().raw() + 1;
    let first_new_node = 1_000_000u64;
    let mut events = Vec::new();
    for i in 0..600u64 {
        events.push(Event::add_node(today + i as i64, first_new_node + i));
        if i > 0 {
            events.push(Event::add_edge(
                today + i as i64,
                2_000_000 + i,
                first_new_node + i - 1,
                first_new_node + i,
            ));
        }
    }
    gm.append_events(events).expect("append updates");
    println!(
        "after live updates the index has {} leaves and {} pending recent events",
        gm.stats().leaves,
        gm.stats().recent_events
    );

    // The updates are immediately visible to historical queries.
    let handle = gm
        .get_hist_graph(Timestamp(today + 700), "")
        .expect("query after updates");
    println!(
        "snapshot after the burst: {} nodes",
        gm.graph(handle).node_count()
    );

    // Materialization: speed up repeated queries against the recent past.
    let query_times: Vec<Timestamp> = (0..20)
        .map(|i| Timestamp(dataset.end_time().raw() - i * 2))
        .collect();
    let timed = |gm: &mut GraphManager| {
        let start = Instant::now();
        for &t in &query_times {
            let h = gm.get_hist_graph(t, "").expect("query");
            gm.release(h);
        }
        gm.cleanup();
        start.elapsed()
    };
    let cold = timed(&mut gm);
    gm.materialize_root().expect("materialize root");
    gm.materialize_descendants(1).expect("materialize children");
    let warm = timed(&mut gm);
    println!(
        "20 repeated queries: {:?} without materialization, {:?} with root+children materialized",
        cold, warm
    );
}
