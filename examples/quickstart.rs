//! Quickstart: build a historical graph database over a synthetic
//! co-authorship trace, retrieve a few snapshots, and inspect them.
//!
//! Run with `cargo run --release --example quickstart`.

use historygraph::datagen::{dblp_like, DblpConfig};
use historygraph::deltagraph::{DeltaGraphConfig, DifferentialFunction};
use historygraph::tgraph::Timestamp;
use historygraph::{GraphManager, GraphManagerConfig};

fn main() {
    // 1. A synthetic growing co-authorship network (stand-in for DBLP).
    let dataset = dblp_like(&DblpConfig {
        total_edges: 5_000,
        ..DblpConfig::default()
    });
    println!(
        "generated {} events spanning years {}..{}",
        dataset.events.len(),
        dataset.start_time(),
        dataset.end_time()
    );

    // 2. Build the DeltaGraph index (in memory here; see `build_on_disk`).
    let config = GraphManagerConfig::default().with_index(
        DeltaGraphConfig::new(1_000, 4).with_diff_fn(DifferentialFunction::Intersection),
    );
    let mut gm = GraphManager::build_in_memory(&dataset.events, config).expect("build index");
    let stats = gm.stats();
    println!(
        "index: {} leaves, height {}, {} bytes of deltas on the store",
        stats.leaves, stats.height, stats.stored_bytes
    );

    // 3. Retrieve the graph structure as of three different years.
    for year in [1970, 1990, 2005] {
        let handle = gm
            .get_hist_graph(Timestamp(year), "")
            .expect("snapshot retrieval");
        let view = gm.graph(handle);
        println!(
            "as of {year}: {} authors, {} co-authorship edges",
            view.node_count(),
            view.edge_count()
        );
        gm.release(handle);
    }
    gm.cleanup();

    // 4. A multipoint query: every fifth year, retrieved together so shared
    //    deltas are fetched only once, and held in the GraphPool compactly.
    let times: Vec<Timestamp> = (1970..=2005).step_by(5).map(Timestamp).collect();
    let handles = gm
        .get_hist_graphs(&times, "")
        .expect("multipoint retrieval");
    println!(
        "retrieved {} snapshots; GraphPool holds them in ~{} KiB",
        handles.len(),
        gm.pool_memory() / 1024
    );
}
