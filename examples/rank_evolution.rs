//! Figure-1-style analysis: how do the PageRank ranks of the nodes that are
//! most central *today* evolve over the history of the network?
//!
//! Run with `cargo run --release --example rank_evolution`.

use historygraph::analytics::{rank_evolution, GraphRef};
use historygraph::datagen::{dblp_like, DblpConfig};
use historygraph::deltagraph::DeltaGraphConfig;
use historygraph::tgraph::Timestamp;
use historygraph::{GraphManager, GraphManagerConfig};

fn main() {
    let dataset = dblp_like(&DblpConfig {
        total_edges: 4_000,
        ..DblpConfig::default()
    });
    let mut gm = GraphManager::build_in_memory(
        &dataset.events,
        GraphManagerConfig::default().with_index(DeltaGraphConfig::new(800, 4)),
    )
    .expect("build index");

    // Retrieve one snapshot per five-year period (multipoint query).
    let years: Vec<Timestamp> = (1975..=2005).step_by(5).map(Timestamp).collect();
    let handles = gm.get_hist_graphs(&years, "").expect("retrieve snapshots");

    // Track the top-10 nodes of the latest snapshot backwards through time.
    let snapshots: Vec<(Timestamp, _)> = years
        .iter()
        .zip(&handles)
        .map(|(&t, &h)| (t, gm.graph(h)))
        .collect();
    println!(
        "final snapshot: {} nodes / {} edges",
        snapshots.last().unwrap().1.count_nodes(),
        snapshots.last().unwrap().1.count_edges()
    );

    let series = rank_evolution(&snapshots, 10, 20);
    println!("\nrank evolution of the nodes in today's top 10 (rank 1 = most central):");
    print!("{:>8}", "node");
    for (year, _) in &snapshots {
        print!("{:>8}", year.raw());
    }
    println!();
    for s in &series {
        print!("{:>8}", s.node.raw());
        for (_, rank) in &s.ranks {
            match rank {
                Some(r) => print!("{r:>8}"),
                None => print!("{:>8}", "-"),
            }
        }
        println!();
    }
}
