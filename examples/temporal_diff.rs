//! Temporal-difference analysis on a network with churn: what disappeared
//! between two time points, how many triangles formed over the last period,
//! and which collaborations were created inside a window.
//!
//! Run with `cargo run --release --example temporal_diff`.

use historygraph::analytics::triangle_count;
use historygraph::datagen::{churn_trace, ChurnConfig};
use historygraph::deltagraph::DeltaGraphConfig;
use historygraph::tgraph::{TimeExpression, Timestamp};
use historygraph::{GraphManager, GraphManagerConfig};

fn main() {
    // Dataset 2 analogue: a grown network followed by additions + deletions.
    let dataset = churn_trace(&ChurnConfig {
        churn_events: 6_000,
        ..ChurnConfig::default()
    });
    let mut gm = GraphManager::build_in_memory(
        &dataset.events,
        GraphManagerConfig::default().with_index(DeltaGraphConfig::new(1_000, 4)),
    )
    .expect("build index");

    let (t1, t2) = (Timestamp(2010), Timestamp(2012));

    // "Which edges were valid at t1 but no longer at t2?" — a TimeExpression.
    let gone = gm
        .get_hist_graph_expr(&TimeExpression::diff(t1.raw(), t2.raw()), "")
        .expect("difference query");
    println!(
        "elements valid at {t1} but gone by {t2}: {} nodes, {} edges",
        gm.graph(gone).node_count(),
        gm.graph(gone).edge_count()
    );

    // "How many new triangles have been formed over the last period?"
    let h1 = gm.get_hist_graph(t1, "").unwrap();
    let h2 = gm.get_hist_graph(t2, "").unwrap();
    let before = triangle_count(&gm.graph(h1));
    let after = triangle_count(&gm.graph(h2));
    println!(
        "triangles at {t1}: {before}, at {t2}: {after} (new: {})",
        after.saturating_sub(before)
    );

    // "Which collaborations were created during the window [t1, t2)?"
    let (window, transients) = gm
        .get_hist_graph_interval(t1, t2, "")
        .expect("interval query");
    println!(
        "elements added in [{t1}, {t2}): {} nodes, {} edges ({} transient events)",
        gm.graph(window).node_count(),
        gm.graph(window).edge_count(),
        transients.len()
    );

    // GraphPool keeps all retrieved graphs overlaid on one structure.
    println!(
        "GraphPool: {} overlaid graphs in ~{} KiB",
        gm.pool().active_overlay_count(),
        gm.pool_memory() / 1024
    );
}
