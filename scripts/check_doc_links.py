#!/usr/bin/env python3
"""Checks that relative markdown links in the given files resolve.

Usage: check_doc_links.py FILE.md [FILE.md ...]

External links (http/https/mailto) are skipped — CI runs offline and
flaky remote checks would make the docs gate unreliable. Anchors are
verified against the target file's headings (GitHub-style slugs).
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def slugify(heading: str) -> str:
    """GitHub-style heading slug: lowercase, spaces to dashes, drop
    everything that is not alphanumeric, dash, or underscore."""
    slug = heading.strip().lower().replace(" ", "-")
    return re.sub(r"[^a-z0-9_-]", "", slug)


def anchors_of(path: Path) -> set:
    return {slugify(m.group(1)) for m in HEADING.finditer(path.read_text())}


def check(path: Path) -> list:
    errors = []
    for match in LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        dest = path if not file_part else (path.parent / file_part).resolve()
        if not dest.exists():
            errors.append(f"{path}: broken link {target!r} (no {dest})")
            continue
        if anchor and dest.suffix == ".md" and slugify(anchor) not in anchors_of(dest):
            errors.append(f"{path}: broken anchor {target!r}")
    return errors


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for name in sys.argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"no such file: {name}")
            continue
        errors.extend(check(path))
    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        print(f"ok: {len(sys.argv) - 1} file(s), all relative links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
