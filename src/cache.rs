//! The shared snapshot cache: hot points become pool lookups.
//!
//! The paper's central claim is that snapshot retrieval should cost little
//! more than a GraphPool lookup once the DeltaGraph has been traversed — yet
//! without a cache every `GET GRAPH AT t` re-traverses the index, and two
//! sessions asking for the same instant build two separate pool overlays,
//! defeating the pool's sharing design (Section 6). The [`SnapshotCache`]
//! closes both gaps:
//!
//! * an LRU of recently materialized snapshots keyed by
//!   `(t, `[`AttrOptions`]`)`, so a hot point is computed once and then
//!   served from memory, and
//! * one reference-counted pool overlay per cached snapshot, shared by every
//!   session that retrieves that `(t, opts)` — the GraphPool's overlay
//!   sharing finally kicks in *across* connections, not just within one.
//!
//! Consistency is kept by the append path: an `APPEND` at time `ta`
//! invalidates every cached entry with `t >= ta` (those snapshots could now
//! differ from a fresh computation), while entries strictly before `ta`
//! stay valid — history already written never changes.
//!
//! The cache itself only bookkeeps; reference counts live in the
//! [`GraphPool`](graphpool::GraphPool) and locking lives in
//! [`SharedGraphManager`](crate::SharedGraphManager). See
//! `docs/ARCHITECTURE.md` for where the cache sits in a request's life.

use std::collections::HashMap;
use std::sync::Arc;

use graphpool::GraphId;
use tgraph::codec::{write_varint, Decode, Encode, Reader};
use tgraph::{AttrOptions, Snapshot, Timestamp};

/// Monotonically increasing counters describing cache behavior, reported
/// over the wire by `STATS CACHE`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing — point retrievals that had to traverse
    /// the DeltaGraph, and read-only peeks that fell back to a direct
    /// computation. Both count, so the reported hit rate reflects every
    /// query that consulted the cache.
    pub misses: u64,
    /// Snapshots inserted after a miss.
    pub insertions: u64,
    /// Entries dropped because an `APPEND` landed at or before their time.
    pub invalidations: u64,
    /// Entries dropped to make room (LRU order).
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Encode for CacheStats {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.hits);
        write_varint(buf, self.misses);
        write_varint(buf, self.insertions);
        write_varint(buf, self.invalidations);
        write_varint(buf, self.evictions);
    }
}

impl Decode for CacheStats {
    fn decode(r: &mut Reader<'_>) -> tgraph::Result<Self> {
        Ok(CacheStats {
            hits: r.read_varint()?,
            misses: r.read_varint()?,
            insertions: r.read_varint()?,
            invalidations: r.read_varint()?,
            evictions: r.read_varint()?,
        })
    }
}

/// One cached snapshot as reported by `STATS CACHE`: its key, its shared
/// overlay, and how many references that overlay currently has (the cache's
/// own plus one per session holding it).
#[derive(Clone, Debug)]
pub struct CacheEntryInfo {
    /// The cached time point.
    pub t: Timestamp,
    /// Canonical attribute-options string of the key.
    pub opts: String,
    /// The pool overlay shared by every session retrieving this entry.
    pub overlay: GraphId,
    /// Outstanding references to the overlay.
    pub refs: usize,
}

impl Encode for CacheEntryInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.t.encode(buf);
        self.opts.encode(buf);
        // GraphId is a graphpool type, so its codec impl cannot live there
        // (the trait is tgraph's); encode the raw u32 field instead.
        write_varint(buf, u64::from(self.overlay.0));
        self.refs.encode(buf);
    }
}

impl Decode for CacheEntryInfo {
    fn decode(r: &mut Reader<'_>) -> tgraph::Result<Self> {
        Ok(CacheEntryInfo {
            t: Timestamp::decode(r)?,
            opts: String::decode(r)?,
            overlay: GraphId(
                u32::try_from(r.read_varint()?)
                    .map_err(|_| tgraph::TgError::Codec("graph id exceeds u32 range".into()))?,
            ),
            refs: usize::decode(r)?,
        })
    }
}

struct CacheEntry {
    snapshot: Arc<Snapshot>,
    overlay: GraphId,
    last_used: u64,
}

/// An LRU cache of materialized snapshots keyed by `(t, AttrOptions)`.
///
/// Capacity 0 disables the cache entirely: lookups always miss without
/// touching the counters, and nothing is retained. Entries own one pool
/// reference to their overlay; dropping an entry (eviction, invalidation,
/// purge) returns the overlay id so the owner can release that reference.
pub struct SnapshotCache {
    capacity: usize,
    entries: HashMap<(Timestamp, AttrOptions), CacheEntry>,
    tick: u64,
    stats: CacheStats,
}

impl SnapshotCache {
    /// Creates a cache holding at most `capacity` snapshots (0 disables it).
    pub fn new(capacity: usize) -> Self {
        SnapshotCache {
            capacity,
            entries: HashMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Maximum number of cached snapshots (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of snapshots currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The behavior counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `(t, opts)`, refreshing its LRU position. `count` controls
    /// whether the hit/miss counters move (the double-checked re-probe after
    /// a miss passes `false` so one logical lookup is counted once).
    pub(crate) fn lookup(
        &mut self,
        t: Timestamp,
        opts: &AttrOptions,
        count: bool,
    ) -> Option<(Arc<Snapshot>, GraphId)> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        // Borrow-friendly: probe with a borrowed tuple key is not possible
        // with a (Timestamp, AttrOptions) key, so clone the small key parts.
        match self.entries.get_mut(&(t, opts.clone())) {
            Some(entry) => {
                entry.last_used = self.tick;
                if count {
                    self.stats.hits += 1;
                }
                Some((Arc::clone(&entry.snapshot), entry.overlay))
            }
            None => {
                if count {
                    self.stats.misses += 1;
                }
                None
            }
        }
    }

    /// Read-only probe: the cached snapshot for `(t, opts)` if present,
    /// refreshing its LRU position. Hits and misses both count — a failed
    /// peek forces the caller into a direct snapshot computation, which is
    /// exactly the work the hit rate is supposed to describe. (PR 3 counted
    /// only peek hits, which inflated the reported rate.) The probe still
    /// differs from [`SnapshotCache::lookup`] in that nothing is inserted
    /// after a miss.
    pub(crate) fn peek(&mut self, t: Timestamp, opts: &AttrOptions) -> Option<Arc<Snapshot>> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        let Some(entry) = self.entries.get_mut(&(t, opts.clone())) else {
            self.stats.misses += 1;
            return None;
        };
        entry.last_used = self.tick;
        self.stats.hits += 1;
        Some(Arc::clone(&entry.snapshot))
    }

    /// Inserts a freshly materialized snapshot. Returns the overlays this
    /// displaced — a previous entry under the same key (replaced) and/or the
    /// least-recently-used entry (evicted to make room) — whose cache
    /// references the caller must release. Must not be called when the
    /// cache is disabled.
    pub(crate) fn insert(
        &mut self,
        t: Timestamp,
        opts: AttrOptions,
        snapshot: Arc<Snapshot>,
        overlay: GraphId,
    ) -> Vec<GraphId> {
        debug_assert!(self.capacity > 0, "insert into a disabled cache");
        let mut displaced = Vec::new();
        if let Some(old) = self.entries.remove(&(t, opts.clone())) {
            // Same key re-inserted: the old overlay's cache reference must
            // not leak. (Unreachable from the double-checked retrieval path,
            // but cheap to keep correct for any future caller.)
            displaced.push(old.overlay);
        } else if self.entries.len() >= self.capacity {
            if let Some(key) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                let old = self.entries.remove(&key).expect("key just found");
                self.stats.evictions += 1;
                displaced.push(old.overlay);
            }
        }
        self.tick += 1;
        self.stats.insertions += 1;
        self.entries.insert(
            (t, opts),
            CacheEntry {
                snapshot,
                overlay,
                last_used: self.tick,
            },
        );
        displaced
    }

    /// Drops every entry at or after `t` (an `APPEND` at `t` may change any
    /// snapshot from `t` onwards; earlier history is immutable). Returns the
    /// overlays whose cache references must be released.
    pub(crate) fn invalidate_from(&mut self, t: Timestamp) -> Vec<GraphId> {
        let doomed: Vec<(Timestamp, AttrOptions)> = self
            .entries
            .keys()
            .filter(|(et, _)| *et >= t)
            .cloned()
            .collect();
        let mut overlays = Vec::with_capacity(doomed.len());
        for key in doomed {
            if let Some(entry) = self.entries.remove(&key) {
                self.stats.invalidations += 1;
                overlays.push(entry.overlay);
            }
        }
        overlays
    }

    /// Drops every entry (administrative reset). Returns the overlays whose
    /// cache references must be released.
    pub(crate) fn purge(&mut self) -> Vec<GraphId> {
        self.entries.drain().map(|(_, e)| e.overlay).collect()
    }

    /// The cached keys and overlays, sorted by `(t, opts)` for deterministic
    /// reporting. Reference counts are the pool's business; the manager
    /// fills them in (see `GraphManager::cache_entries`).
    pub(crate) fn entry_list(&self) -> Vec<(Timestamp, AttrOptions, GraphId)> {
        let mut list: Vec<_> = self
            .entries
            .iter()
            .map(|((t, opts), e)| (*t, opts.clone(), e.overlay))
            .collect();
        list.sort_by_key(|(t, opts, _)| (*t, opts.canonical_string()));
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> Arc<Snapshot> {
        Arc::new(Snapshot::new())
    }

    #[test]
    fn disabled_cache_never_hits_or_counts() {
        let mut c = SnapshotCache::new(0);
        assert!(c.lookup(Timestamp(1), &AttrOptions::all(), true).is_none());
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        let mut c = SnapshotCache::new(2);
        let o = AttrOptions::all();
        assert!(c
            .insert(Timestamp(1), o.clone(), snap(), GraphId(10))
            .is_empty());
        assert!(c
            .insert(Timestamp(2), o.clone(), snap(), GraphId(11))
            .is_empty());
        // touch t=1 so t=2 is the LRU victim
        assert!(c.lookup(Timestamp(1), &o, true).is_some());
        let evicted = c.insert(Timestamp(3), o.clone(), snap(), GraphId(12));
        assert_eq!(evicted, vec![GraphId(11)]);
        assert!(c.lookup(Timestamp(1), &o, true).is_some());
        assert!(c.lookup(Timestamp(2), &o, true).is_none());
        assert!(c.lookup(Timestamp(3), &o, true).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (3, 1, 1));
    }

    #[test]
    fn uncounted_lookup_leaves_stats_alone() {
        let mut c = SnapshotCache::new(4);
        c.insert(Timestamp(1), AttrOptions::all(), snap(), GraphId(9));
        assert!(c.lookup(Timestamp(1), &AttrOptions::all(), false).is_some());
        assert!(c.lookup(Timestamp(2), &AttrOptions::all(), false).is_none());
        assert_eq!((c.stats().hits, c.stats().misses), (0, 0));
    }

    #[test]
    fn reinserting_a_key_returns_the_replaced_overlay() {
        let mut c = SnapshotCache::new(2);
        let o = AttrOptions::all();
        c.insert(Timestamp(1), o.clone(), snap(), GraphId(10));
        c.insert(Timestamp(2), o.clone(), snap(), GraphId(11));
        // Re-inserting t=1 at full capacity replaces in place: the old
        // overlay comes back, and no innocent LRU victim is evicted.
        let displaced = c.insert(Timestamp(1), o.clone(), snap(), GraphId(12));
        assert_eq!(displaced, vec![GraphId(10)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.lookup(Timestamp(1), &o, true).unwrap().1, GraphId(12));
        assert_eq!(c.lookup(Timestamp(2), &o, true).unwrap().1, GraphId(11));
    }

    #[test]
    fn peek_counts_both_hits_and_misses() {
        let mut c = SnapshotCache::new(4);
        assert!(c.peek(Timestamp(1), &AttrOptions::all()).is_none());
        assert_eq!((c.stats().hits, c.stats().misses), (0, 1));
        c.insert(Timestamp(1), AttrOptions::all(), snap(), GraphId(9));
        assert!(c.peek(Timestamp(1), &AttrOptions::all()).is_some());
        assert_eq!((c.stats().hits, c.stats().misses), (1, 1));
        // A disabled cache's peek stays silent: nothing was consulted.
        let mut off = SnapshotCache::new(0);
        assert!(off.peek(Timestamp(1), &AttrOptions::all()).is_none());
        assert_eq!(off.stats(), CacheStats::default());
    }

    #[test]
    fn invalidation_is_a_strict_time_cut() {
        let mut c = SnapshotCache::new(8);
        let o = AttrOptions::all();
        for t in [1i64, 5, 9] {
            c.insert(Timestamp(t), o.clone(), snap(), GraphId(100 + t as u32));
        }
        let dropped = c.invalidate_from(Timestamp(5));
        let mut ids: Vec<u32> = dropped.iter().map(|g| g.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![105, 109]); // t=5 and t=9 go, t=1 stays
        assert!(c.lookup(Timestamp(1), &o, true).is_some());
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn stats_and_entry_info_round_trip_through_the_codec() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            insertions: 1,
            invalidations: 0,
            evictions: 2,
        };
        assert_eq!(CacheStats::from_bytes(&s.to_bytes()).unwrap(), s);
        let e = CacheEntryInfo {
            t: Timestamp(-6),
            opts: "+node:all".into(),
            overlay: GraphId(42),
            refs: 3,
        };
        let d = CacheEntryInfo::from_bytes(&e.to_bytes()).unwrap();
        assert_eq!(
            (d.t, d.opts, d.overlay, d.refs),
            (e.t, e.opts, e.overlay, e.refs)
        );
    }

    #[test]
    fn distinct_attr_options_are_distinct_entries() {
        let mut c = SnapshotCache::new(8);
        let all = AttrOptions::all();
        let bare = AttrOptions::structure_only();
        c.insert(Timestamp(1), all.clone(), snap(), GraphId(1));
        c.insert(Timestamp(1), bare.clone(), snap(), GraphId(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(Timestamp(1), &all, true).unwrap().1, GraphId(1));
        assert_eq!(c.lookup(Timestamp(1), &bare, true).unwrap().1, GraphId(2));
    }
}
