//! Durable backing for a sharded deployment: directory layout, manifest,
//! and the crash-atomic roll protocol.
//!
//! A durable [`crate::ShardedGraphManager`] keeps one directory:
//!
//! ```text
//! data/
//!   MANIFEST             # which files below are authoritative
//!   segment-00000.seg    # sealed historical shard 0 (write-once)
//!   segment-00001.seg    # sealed historical shard 1
//!   tailseed-00002.seg   # the tail shard's seed events (write-once)
//!   wal-00002.log        # the tail shard's append log (grows)
//! ```
//!
//! Sealed shards are immutable [`Segment`] files. The tail shard is the
//! pair *tailseed + WAL*: its state is always `tailseed.seed` replayed,
//! then every WAL record in order. The `MANIFEST` (written via temp file +
//! fsync + atomic rename) names the generation, so a crash anywhere during
//! a roll leaves either the old generation (trigger event unacknowledged,
//! correctly absent) or the new one — never a mix. Files of an incomplete
//! roll are deleted as orphans on the next open.
//!
//! Rolling the tail (generation `g` → `g+1`) performs, in order:
//!
//! 1. seal `segment-g.seg` from `tailseed-g.seg` + the replayed WAL,
//! 2. write `tailseed-(g+1).seg` with the new tail's seed events,
//! 3. create `wal-(g+1).log` holding the roll-triggering event, fsynced,
//! 4. atomically swap the `MANIFEST` to generation `g+1`,
//! 5. delete the old generation's tailseed and WAL (best-effort).
//!
//! Only step 4 commits; everything before it is invisible to recovery.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use deltagraph::{DgError, DgResult};
use kvstore::wal::{read_wal_events, Wal, WalSyncPolicy};
use kvstore::{Segment, SegmentMeta, StoreError};
use tgraph::{Event, Timestamp};

/// The manifest's first line; bump on incompatible layout changes.
const MANIFEST_HEADER: &str = "historygraph-manifest v1";

fn corrupt(msg: impl Into<String>) -> DgError {
    DgError::Store(StoreError::Corruption(msg.into()))
}

fn io_err(e: std::io::Error) -> DgError {
    DgError::Store(StoreError::Io(e))
}

pub(crate) fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:05}.seg"))
}

fn tailseed_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("tailseed-{gen:05}.seg"))
}

fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:05}.log"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

/// Whether `dir` holds a recoverable deployment (i.e. a committed manifest).
pub fn is_durable_dir(dir: impl AsRef<Path>) -> bool {
    manifest_path(dir.as_ref()).is_file()
}

/// Writes the manifest atomically: temp file, fsync, rename, directory
/// fsync. `tail_gen` always equals the number of sealed segments.
fn write_manifest(dir: &Path, tail_gen: u64) -> DgResult<()> {
    let tmp = dir.join("MANIFEST.tmp");
    let mut f = File::create(&tmp).map_err(io_err)?;
    f.write_all(format!("{MANIFEST_HEADER}\nsegments {tail_gen}\ntail {tail_gen}\n").as_bytes())
        .map_err(io_err)?;
    f.sync_data().map_err(io_err)?;
    drop(f);
    std::fs::rename(&tmp, manifest_path(dir)).map_err(io_err)?;
    File::open(dir)
        .and_then(|d| d.sync_data())
        .map_err(io_err)?;
    Ok(())
}

fn read_manifest(dir: &Path) -> DgResult<u64> {
    let text = std::fs::read_to_string(manifest_path(dir)).map_err(io_err)?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(corrupt(format!(
            "unrecognized manifest header in {}",
            dir.display()
        )));
    }
    let mut segments: Option<u64> = None;
    let mut tail: Option<u64> = None;
    for line in lines {
        match line.split_once(' ') {
            Some(("segments", n)) => segments = n.parse().ok(),
            Some(("tail", n)) => tail = n.parse().ok(),
            _ => {}
        }
    }
    match (segments, tail) {
        (Some(s), Some(t)) if s == t => Ok(t),
        _ => Err(corrupt(format!(
            "inconsistent manifest in {}",
            dir.display()
        ))),
    }
}

/// One shard's full contents as planned at build time or recovered from
/// disk: its routing lower bound, synthetic seed events, and real events.
pub(crate) struct ShardPlan {
    pub lower: Option<Timestamp>,
    pub seed: Vec<Event>,
    pub events: Vec<Event>,
}

/// The live durable-storage state of a sharded deployment. Owned by the
/// router behind a mutex; every operation here assumes the caller already
/// serialized appends (the tail shard's write lock) or rolls (the router's
/// exclusive lock).
pub(crate) struct DurableState {
    dir: PathBuf,
    wal: Wal,
    /// The tail generation: `tail_gen` sealed segments exist below it.
    tail_gen: u64,
    /// Sum of sealed segment file sizes.
    segment_bytes: u64,
    /// WAL appends across generations (this process; recovery replays are
    /// not counted).
    appends_before_gen: u64,
    /// Fsyncs across generations (this process).
    fsyncs_before_gen: u64,
    /// Bytes truncated from the WAL tail at the last recovery.
    pub torn_bytes: u64,
    /// Torn-tail truncations performed at the last recovery (0 or 1, plus
    /// 1 more if a trailing never-applied record had to be dropped).
    pub torn_truncations: u64,
    /// Wall-clock milliseconds the last recovery took (0 for a fresh
    /// build). Set by the router once the shards are rebuilt.
    pub recovery_ms: u64,
}

impl DurableState {
    /// Creates a fresh deployment at `dir` from build-time shard plans:
    /// one sealed segment per historical shard, a tailseed + WAL pair for
    /// the tail (the WAL pre-loaded with the tail's real events), and the
    /// committing manifest. Any previous deployment in `dir` is replaced.
    pub fn initialize(dir: &Path, policy: WalSyncPolicy, plans: &[ShardPlan]) -> DgResult<Self> {
        assert!(!plans.is_empty(), "plans come from a non-empty trace");
        std::fs::create_dir_all(dir).map_err(io_err)?;
        // Drop any stale manifest first so a crash mid-initialize can never
        // pair an old manifest with new files.
        std::fs::remove_file(manifest_path(dir)).ok();
        let tail_gen = (plans.len() - 1) as u64;
        let mut segment_bytes = 0u64;
        for (i, plan) in plans[..plans.len() - 1].iter().enumerate() {
            let path = segment_path(dir, i as u64);
            Segment {
                meta: SegmentMeta {
                    shard_index: i as u64,
                    lower: plan.lower,
                },
                seed: plan.seed.clone(),
                events: plan.events.clone(),
            }
            .write(&path)?;
            segment_bytes += std::fs::metadata(&path).map_err(io_err)?.len();
        }
        let tail = plans.last().expect("non-empty");
        Segment {
            meta: SegmentMeta {
                shard_index: tail_gen,
                lower: tail.lower,
            },
            seed: tail.seed.clone(),
            events: Vec::new(),
        }
        .write(tailseed_path(dir, tail_gen))?;
        let mut wal = Wal::create(wal_path(dir, tail_gen), policy)?;
        for ev in &tail.events {
            wal.append(ev)?;
        }
        wal.sync()?;
        write_manifest(dir, tail_gen)?;
        Ok(DurableState {
            dir: dir.to_path_buf(),
            wal,
            tail_gen,
            segment_bytes,
            appends_before_gen: 0,
            fsyncs_before_gen: 0,
            torn_bytes: 0,
            torn_truncations: 0,
            recovery_ms: 0,
        })
    }

    /// Opens an existing deployment: reads the manifest, loads every sealed
    /// segment and the tail pair (truncating a torn WAL tail), deletes
    /// orphan files from an incomplete roll, and returns the storage state
    /// plus one [`ShardPlan`] per shard, tail last. The caller rebuilds the
    /// in-memory shards from the plans and then records
    /// [`DurableState::recovery_ms`].
    pub fn open(dir: &Path, policy: WalSyncPolicy) -> DgResult<(Self, Vec<ShardPlan>)> {
        let tail_gen = read_manifest(dir)?;
        let mut plans = Vec::with_capacity(tail_gen as usize + 1);
        let mut segment_bytes = 0u64;
        for i in 0..tail_gen {
            let path = segment_path(dir, i);
            let seg = Segment::read(&path)?;
            if seg.meta.shard_index != i {
                return Err(corrupt(format!(
                    "segment {} claims shard index {}, expected {i}",
                    path.display(),
                    seg.meta.shard_index
                )));
            }
            segment_bytes += std::fs::metadata(&path).map_err(io_err)?.len();
            plans.push(ShardPlan {
                lower: seg.meta.lower,
                seed: seg.seed,
                events: seg.events,
            });
        }
        let tailseed = Segment::read(tailseed_path(dir, tail_gen))?;
        if tailseed.meta.shard_index != tail_gen || !tailseed.events.is_empty() {
            return Err(corrupt(format!(
                "tailseed for generation {tail_gen} is malformed"
            )));
        }
        let replay = Wal::open(wal_path(dir, tail_gen), policy)?;
        plans.push(ShardPlan {
            lower: tailseed.meta.lower,
            seed: tailseed.seed,
            events: replay.events,
        });
        let state = DurableState {
            dir: dir.to_path_buf(),
            wal: replay.wal,
            tail_gen,
            segment_bytes,
            appends_before_gen: 0,
            fsyncs_before_gen: 0,
            torn_bytes: replay.torn_bytes,
            torn_truncations: u64::from(replay.torn_bytes > 0),
            recovery_ms: 0,
        };
        state.remove_orphans();
        Ok((state, plans))
    }

    /// Deletes files a crash mid-roll or mid-initialize left behind: any
    /// segment at or past the tail generation, and any tailseed/WAL of
    /// another generation. All best-effort.
    fn remove_orphans(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = parse_numbered(name, "segment-", ".seg")
                .is_some_and(|i| i >= self.tail_gen)
                || parse_numbered(name, "tailseed-", ".seg").is_some_and(|g| g != self.tail_gen)
                || parse_numbered(name, "wal-", ".log").is_some_and(|g| g != self.tail_gen)
                || name == "MANIFEST.tmp"
                || name.ends_with(".seg.tmp");
            if stale {
                std::fs::remove_file(entry.path()).ok();
            }
        }
    }

    /// Appends one event record ahead of the in-memory apply. Returns the
    /// rollback offset for [`DurableState::rollback`].
    pub fn append(&mut self, event: &Event) -> DgResult<u64> {
        Ok(self.wal.append(event)?)
    }

    /// Undoes the record written at `offset` after the in-memory apply
    /// rejected the event.
    pub fn rollback(&mut self, offset: u64) -> DgResult<()> {
        Ok(self.wal.truncate_to(offset)?)
    }

    /// The crash-atomic roll protocol (module docs): seals the current tail
    /// into a segment, starts generation `tail_gen + 1` whose WAL holds the
    /// roll-triggering `event`, and commits by swapping the manifest.
    /// Nothing is visible to recovery until the swap; after `Ok` the caller
    /// must install the new in-memory tail shard.
    pub fn roll(&mut self, boundary: Timestamp, new_seed: &[Event], event: &Event) -> DgResult<()> {
        let old_gen = self.tail_gen;
        let new_gen = old_gen + 1;
        // 1. Seal: the old tail's full contents are its seed file plus the
        //    complete WAL (every record intact — this log was never torn).
        self.wal.sync()?;
        let old_seed = Segment::read(tailseed_path(&self.dir, old_gen))?;
        let wal_events = read_wal_events(self.wal.path())?;
        let sealed_path = segment_path(&self.dir, old_gen);
        Segment {
            meta: old_seed.meta,
            seed: old_seed.seed,
            events: wal_events,
        }
        .write(&sealed_path)?;
        // 2–3. The new generation's tailseed and WAL (trigger event synced
        //      before the commit point so an acked roll survives a crash).
        Segment {
            meta: SegmentMeta {
                shard_index: new_gen,
                lower: Some(boundary),
            },
            seed: new_seed.to_vec(),
            events: Vec::new(),
        }
        .write(tailseed_path(&self.dir, new_gen))?;
        let mut new_wal = Wal::create(wal_path(&self.dir, new_gen), self.wal.policy())?;
        new_wal.append(event)?;
        new_wal.sync()?;
        // 4. Commit.
        write_manifest(&self.dir, new_gen)?;
        // 5. Best-effort cleanup; orphan removal at the next open catches
        //    anything missed.
        std::fs::remove_file(tailseed_path(&self.dir, old_gen)).ok();
        std::fs::remove_file(wal_path(&self.dir, old_gen)).ok();
        self.segment_bytes += std::fs::metadata(&sealed_path)
            .map(|m| m.len())
            .unwrap_or(0);
        self.appends_before_gen += self.wal.appends();
        self.fsyncs_before_gen += self.wal.fsyncs();
        self.wal = new_wal;
        self.tail_gen = new_gen;
        Ok(())
    }

    /// Drops the last WAL record: recovery's second chance when the rebuild
    /// rejects the final replayed event (a crash between the write-ahead
    /// and the rollback of a failed apply leaves exactly one such record).
    pub fn drop_last_wal_record(&mut self, record_len: u64) -> DgResult<()> {
        let new_len = self.wal.len().saturating_sub(record_len);
        self.wal.truncate_to(new_len)?;
        self.wal.sync()?;
        self.torn_bytes += record_len;
        self.torn_truncations += 1;
        Ok(())
    }

    /// Forces any buffered WAL bytes down now (shutdown path).
    pub fn sync(&mut self) -> DgResult<()> {
        Ok(self.wal.sync()?)
    }

    /// Number of sealed segment files.
    pub fn segments(&self) -> u64 {
        self.tail_gen
    }

    /// Total bytes of sealed segment files.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Current WAL length in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len()
    }

    /// WAL appends this process performed (all generations).
    pub fn wal_appends(&self) -> u64 {
        self.appends_before_gen + self.wal.appends()
    }

    /// WAL fsyncs this process performed (all generations).
    pub fn wal_fsyncs(&self) -> u64 {
        self.fsyncs_before_gen + self.wal.fsyncs()
    }

    /// The configured sync policy.
    pub fn policy(&self) -> WalSyncPolicy {
        self.wal.policy()
    }
}

/// Parses `prefix<number>suffix` file names.
fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("durable-test-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn plan(lower: Option<i64>, seed: Vec<Event>, events: Vec<Event>) -> ShardPlan {
        ShardPlan {
            lower: lower.map(Timestamp),
            seed,
            events,
        }
    }

    #[test]
    fn initialize_open_round_trip() {
        let dir = tmpdir("init");
        let plans = vec![
            plan(
                None,
                vec![],
                vec![Event::add_node(1, 1), Event::add_node(2, 2)],
            ),
            plan(
                Some(10),
                vec![Event::add_node(9, 1), Event::add_node(9, 2)],
                vec![Event::add_node(10, 3)],
            ),
        ];
        let st = DurableState::initialize(&dir, WalSyncPolicy::Always, &plans).unwrap();
        assert_eq!(st.segments(), 1);
        assert!(st.wal_bytes() > 0);
        drop(st);

        let (st, recovered) = DurableState::open(&dir, WalSyncPolicy::Always).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].lower, None);
        assert_eq!(recovered[0].events.len(), 2);
        assert_eq!(recovered[1].lower, Some(Timestamp(10)));
        assert_eq!(recovered[1].seed.len(), 2);
        assert_eq!(recovered[1].events, vec![Event::add_node(10, 3)]);
        assert_eq!(st.torn_truncations, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn roll_commits_atomically_and_cleans_up() {
        let dir = tmpdir("roll");
        let plans = vec![plan(None, vec![], vec![Event::add_node(1, 1)])];
        let mut st = DurableState::initialize(&dir, WalSyncPolicy::Always, &plans).unwrap();
        st.append(&Event::add_node(2, 2)).unwrap();
        let trigger = Event::add_node(5, 3);
        st.roll(
            Timestamp(5),
            &[Event::add_node(4, 1), Event::add_node(4, 2)],
            &trigger,
        )
        .unwrap();
        assert_eq!(st.segments(), 1);
        assert!(segment_path(&dir, 0).is_file());
        assert!(!wal_path(&dir, 0).exists());
        assert!(!tailseed_path(&dir, 0).exists());

        let (st, recovered) = DurableState::open(&dir, WalSyncPolicy::Always).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(
            recovered[0].events,
            vec![Event::add_node(1, 1), Event::add_node(2, 2)]
        );
        assert_eq!(recovered[1].lower, Some(Timestamp(5)));
        assert_eq!(recovered[1].events, vec![trigger]);
        assert_eq!(st.segments(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphans_from_an_incomplete_roll_are_ignored_and_removed() {
        let dir = tmpdir("orphans");
        let plans = vec![plan(None, vec![], vec![Event::add_node(1, 1)])];
        DurableState::initialize(&dir, WalSyncPolicy::Always, &plans).unwrap();
        // Simulate a crash after roll steps 1–3 but before the manifest
        // swap: the sealed segment and new generation exist on disk, but
        // the manifest still points at generation 0.
        Segment {
            meta: SegmentMeta {
                shard_index: 0,
                lower: None,
            },
            seed: vec![],
            events: vec![Event::add_node(1, 1)],
        }
        .write(segment_path(&dir, 0))
        .unwrap();
        Segment {
            meta: SegmentMeta {
                shard_index: 1,
                lower: Some(Timestamp(5)),
            },
            seed: vec![Event::add_node(4, 1)],
            events: vec![],
        }
        .write(tailseed_path(&dir, 1))
        .unwrap();
        Wal::create(wal_path(&dir, 1), WalSyncPolicy::Off)
            .unwrap()
            .append(&Event::add_node(5, 9))
            .unwrap();

        let (_st, recovered) = DurableState::open(&dir, WalSyncPolicy::Always).unwrap();
        // The old generation won: one shard, the phantom roll's event gone.
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].events, vec![Event::add_node(1, 1)]);
        assert!(!segment_path(&dir, 0).exists());
        assert!(!tailseed_path(&dir, 1).exists());
        assert!(!wal_path(&dir, 1).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_clear_error() {
        let dir = tmpdir("nomanifest");
        assert!(!is_durable_dir(&dir));
        assert!(DurableState::open(&dir, WalSyncPolicy::Always).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
