//! Durable backing for a sharded deployment: directory layout, manifest,
//! and the crash-atomic roll protocol.
//!
//! A durable [`crate::ShardedGraphManager`] keeps one directory:
//!
//! ```text
//! data/
//!   MANIFEST             # which files below are authoritative
//!   LOCK                 # pid of the process owning this directory
//!   keys.log             # BIND name→node records (append-only)
//!   segment-00000.seg    # sealed historical shard 0 (write-once)
//!   segment-00001.seg    # sealed historical shard 1
//!   tailseed-00002.seg   # the tail shard's seed events (write-once)
//!   wal-00002.log        # the tail shard's append log (grows)
//! ```
//!
//! Sealed shards are immutable [`Segment`] files. The tail shard is the
//! pair *tailseed + WAL*: its state is always `tailseed.seed` replayed,
//! then every WAL record in order. The `MANIFEST` (written via temp file +
//! fsync + atomic rename) names the generation, so a crash anywhere during
//! a roll leaves either the old generation (trigger event unacknowledged,
//! correctly absent) or the new one — never a mix. Files of an incomplete
//! roll are deleted as orphans on the next open.
//!
//! Rolling the tail (generation `g` → `g+1`) performs, in order:
//!
//! 1. seal `segment-g.seg` from `tailseed-g.seg` + the replayed WAL,
//! 2. write `tailseed-(g+1).seg` with the new tail's seed events,
//! 3. create `wal-(g+1).log` holding the roll-triggering event, fsynced,
//! 4. atomically swap the `MANIFEST` to generation `g+1`,
//! 5. delete the old generation's tailseed and WAL (best-effort).
//!
//! Only step 4 commits; everything before it is invisible to recovery.
//!
//! # Failure handling
//!
//! IO errors on the write path are *classified*: transient kinds
//! (`Interrupted`, `WouldBlock`, `TimedOut`) are retried a bounded number
//! of times with exponential backoff and jitter; everything else (ENOSPC,
//! EIO, failed fsync) is fatal. A fatal failure while appending rolls the
//! write-ahead record back and flips the tail to **read-only degraded
//! mode**: reads keep serving from the already-applied state, appends are
//! refused with a typed [`StoreError::Degraded`], and the process never
//! aborts. See `docs/RELIABILITY.md`.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use deltagraph::{DgError, DgResult};
use kvstore::disk::crc32;
use kvstore::faults;
use kvstore::wal::{read_wal_events, Wal, WalSyncPolicy};
use kvstore::{Segment, SegmentMeta, StoreError};
use tgraph::codec::{Decode, Encode, Reader};
use tgraph::{Event, Timestamp};

/// The manifest's first line; bump on incompatible layout changes.
const MANIFEST_HEADER: &str = "historygraph-manifest v1";

fn corrupt(msg: impl Into<String>) -> DgError {
    DgError::Store(StoreError::Corruption(msg.into()))
}

fn io_err(e: std::io::Error) -> DgError {
    DgError::Store(StoreError::Io(e))
}

pub(crate) fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:05}.seg"))
}

fn tailseed_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("tailseed-{gen:05}.seg"))
}

fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:05}.log"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

fn lock_path(dir: &Path) -> PathBuf {
    dir.join("LOCK")
}

fn keys_path(dir: &Path) -> PathBuf {
    dir.join("keys.log")
}

/// Transient IO retries before giving up on an operation.
const MAX_IO_RETRIES: u32 = 4;

/// Whether an error is worth retrying: the OS said "try again", not "this
/// device is broken". ENOSPC, EIO, and failed fsyncs are fatal.
fn is_transient(e: &DgError) -> bool {
    matches!(
        e,
        DgError::Store(StoreError::Io(io)) if matches!(
            io.kind(),
            std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
        )
    )
}

/// Cheap process-wide pseudo-random value in `0..cap` for backoff jitter
/// (std-only; quality does not matter here, decorrelation does).
fn jitter(cap: u64) -> u64 {
    static SEED: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    let mut x = SEED.fetch_add(0xA076_1D64_78BD_642F, Ordering::Relaxed);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x % cap.max(1)
}

/// Sleeps for the `attempt`-th backoff: exponential base with jitter.
fn backoff(attempt: u32) {
    let base_ms = 1u64 << attempt.min(6);
    std::thread::sleep(Duration::from_millis(base_ms / 2 + jitter(base_ms)));
}

/// Runs `op`, retrying transient errors up to [`MAX_IO_RETRIES`] times with
/// exponential backoff + jitter. Fatal errors propagate immediately.
/// `retries` counts the retries actually performed.
fn retried<T>(retries: &mut u64, mut op: impl FnMut() -> DgResult<T>) -> DgResult<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Err(e) if attempt < MAX_IO_RETRIES && is_transient(&e) => {
                attempt += 1;
                *retries += 1;
                backoff(attempt);
            }
            other => return other,
        }
    }
}

/// Exclusive ownership of a data directory, held as a `LOCK` file naming
/// the owning pid and removed on drop.
struct DirLock {
    path: PathBuf,
}

impl Drop for DirLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Whether the process `pid` is still running (so its lock is not stale).
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new("/proc").join(pid.to_string()).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        true // no cheap liveness probe: never treat a lock as stale
    }
}

/// Takes the exclusive lock on `dir`, reclaiming a stale lock left by a
/// dead process. A lock held by a live process is a clear, typed error —
/// two writers on one directory would corrupt it.
fn acquire_dir_lock(dir: &Path) -> DgResult<DirLock> {
    let path = lock_path(dir);
    for _ in 0..2 {
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                let _ = write!(f, "{}", std::process::id());
                let _ = f.sync_data();
                return Ok(DirLock { path });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = std::fs::read_to_string(&path).unwrap_or_default();
                match holder.trim().parse::<u32>() {
                    Ok(pid) if !pid_alive(pid) => {
                        // Stale lock from a dead process: reclaim and retry.
                        std::fs::remove_file(&path).ok();
                    }
                    parsed => {
                        let who = parsed
                            .map(|p| format!("pid {p}"))
                            .unwrap_or_else(|_| "another process".to_string());
                        return Err(DgError::InvalidParameter(format!(
                            "data directory {} is locked by {who}; remove {} if that process is gone",
                            dir.display(),
                            path.display()
                        )));
                    }
                }
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    Err(DgError::InvalidParameter(format!(
        "could not acquire the lock on data directory {} (another process keeps taking it)",
        dir.display()
    )))
}

/// Appends one `BIND` record (`u32 len | u32 crc | key, node`) and fsyncs
/// it — binds are rare, so per-record durability is cheap.
fn append_key_record(file: &mut File, path: &Path, key: &str, node: u64) -> DgResult<()> {
    let mut payload = Vec::new();
    key.to_string().encode(&mut payload);
    node.encode(&mut payload);
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    faults::write_all(file, &rec, "keys.append", path).map_err(io_err)?;
    file.sync_data().map_err(io_err)?;
    Ok(())
}

/// Reads every intact key-binding record; a torn or checksum-failing tail
/// (crash mid-bind) silently ends the log, like the WAL's torn tail.
fn read_keys(dir: &Path) -> Vec<(String, u64)> {
    let Ok(data) = std::fs::read(keys_path(dir)) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let len =
            u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]) as usize;
        let crc_stored =
            u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
        let start = pos + 8;
        let Some(end) = start.checked_add(len).filter(|&e| e <= data.len()) else {
            break;
        };
        let payload = &data[start..end];
        if crc32(payload) != crc_stored {
            break;
        }
        let mut r = Reader::new(payload);
        match (String::decode(&mut r), u64::decode(&mut r)) {
            (Ok(key), Ok(node)) => out.push((key, node)),
            _ => break,
        }
        pos = end;
    }
    out
}

/// Whether `dir` holds a recoverable deployment (i.e. a committed manifest).
pub fn is_durable_dir(dir: impl AsRef<Path>) -> bool {
    manifest_path(dir.as_ref()).is_file()
}

/// Writes the manifest atomically: temp file, fsync, rename, directory
/// fsync. `tail_gen` always equals the number of sealed segments.
fn write_manifest(dir: &Path, tail_gen: u64) -> DgResult<()> {
    let tmp = dir.join("MANIFEST.tmp");
    faults::check("manifest.open", &tmp).map_err(io_err)?;
    let mut f = File::create(&tmp).map_err(io_err)?;
    let text = format!("{MANIFEST_HEADER}\nsegments {tail_gen}\ntail {tail_gen}\n");
    faults::write_all(&mut f, text.as_bytes(), "manifest.write", &tmp).map_err(io_err)?;
    faults::check("manifest.sync", &tmp).map_err(io_err)?;
    f.sync_data().map_err(io_err)?;
    drop(f);
    faults::check("manifest.rename", &tmp).map_err(io_err)?;
    std::fs::rename(&tmp, manifest_path(dir)).map_err(io_err)?;
    File::open(dir)
        .and_then(|d| d.sync_data())
        .map_err(io_err)?;
    Ok(())
}

fn read_manifest(dir: &Path) -> DgResult<u64> {
    let text = std::fs::read_to_string(manifest_path(dir)).map_err(io_err)?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(corrupt(format!(
            "unrecognized manifest header in {}",
            dir.display()
        )));
    }
    let mut segments: Option<u64> = None;
    let mut tail: Option<u64> = None;
    for line in lines {
        match line.split_once(' ') {
            Some(("segments", n)) => segments = n.parse().ok(),
            Some(("tail", n)) => tail = n.parse().ok(),
            _ => {}
        }
    }
    match (segments, tail) {
        (Some(s), Some(t)) if s == t => Ok(t),
        _ => Err(corrupt(format!(
            "inconsistent manifest in {}",
            dir.display()
        ))),
    }
}

/// One shard's full contents as planned at build time or recovered from
/// disk: its routing lower bound, synthetic seed events, and real events.
pub(crate) struct ShardPlan {
    pub lower: Option<Timestamp>,
    pub seed: Vec<Event>,
    pub events: Vec<Event>,
}

/// The live durable-storage state of a sharded deployment. Owned by the
/// router behind a mutex; every operation here assumes the caller already
/// serialized appends (the tail shard's write lock) or rolls (the router's
/// exclusive lock).
pub(crate) struct DurableState {
    dir: PathBuf,
    wal: Wal,
    /// The tail generation: `tail_gen` sealed segments exist below it.
    tail_gen: u64,
    /// Sum of sealed segment file sizes.
    segment_bytes: u64,
    /// WAL appends across generations (this process; recovery replays are
    /// not counted).
    appends_before_gen: u64,
    /// Fsyncs across generations (this process).
    fsyncs_before_gen: u64,
    /// Bytes truncated from the WAL tail at the last recovery.
    pub torn_bytes: u64,
    /// Torn-tail truncations performed at the last recovery (0 or 1, plus
    /// 1 more if a trailing never-applied record had to be dropped).
    pub torn_truncations: u64,
    /// Wall-clock milliseconds the last recovery took (0 for a fresh
    /// build). Set by the router once the shards are rebuilt.
    pub recovery_ms: u64,
    /// Transient IO errors that were retried on the write path.
    retries: u64,
    /// `Some(reason)` after a fatal tail-write failure: appends are refused
    /// with [`StoreError::Degraded`], reads keep serving.
    degraded: Option<String>,
    /// Open append handle for the key-binding log.
    keys_file: File,
    /// Exclusive data-dir lock, removed when this state drops.
    _lock: DirLock,
}

impl DurableState {
    /// Creates a fresh deployment at `dir` from build-time shard plans:
    /// one sealed segment per historical shard, a tailseed + WAL pair for
    /// the tail (the WAL pre-loaded with the tail's real events), and the
    /// committing manifest. Any previous deployment in `dir` is replaced.
    pub fn initialize(dir: &Path, policy: WalSyncPolicy, plans: &[ShardPlan]) -> DgResult<Self> {
        let Some((tail, sealed)) = plans.split_last() else {
            return Err(DgError::InvalidParameter(
                "cannot initialize durable storage from zero shard plans".into(),
            ));
        };
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let lock = acquire_dir_lock(dir)?;
        // Drop any stale manifest first so a crash mid-initialize can never
        // pair an old manifest with new files. Stale key bindings go too.
        std::fs::remove_file(manifest_path(dir)).ok();
        std::fs::remove_file(keys_path(dir)).ok();
        let mut retries = 0u64;
        let tail_gen = sealed.len() as u64;
        let mut segment_bytes = 0u64;
        for (i, plan) in sealed.iter().enumerate() {
            let path = segment_path(dir, i as u64);
            let seg = Segment {
                meta: SegmentMeta {
                    shard_index: i as u64,
                    lower: plan.lower,
                },
                seed: plan.seed.clone(),
                events: plan.events.clone(),
            };
            retried(&mut retries, || Ok(seg.write(&path)?))?;
            segment_bytes += std::fs::metadata(&path).map_err(io_err)?.len();
        }
        let tailseed = Segment {
            meta: SegmentMeta {
                shard_index: tail_gen,
                lower: tail.lower,
            },
            seed: tail.seed.clone(),
            events: Vec::new(),
        };
        let tailseed_file = tailseed_path(dir, tail_gen);
        retried(&mut retries, || Ok(tailseed.write(&tailseed_file)?))?;
        let mut wal = Wal::create(wal_path(dir, tail_gen), policy)?;
        for ev in &tail.events {
            wal.append(ev)?;
        }
        wal.sync()?;
        retried(&mut retries, || write_manifest(dir, tail_gen))?;
        let keys_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(keys_path(dir))
            .map_err(io_err)?;
        Ok(DurableState {
            dir: dir.to_path_buf(),
            wal,
            tail_gen,
            segment_bytes,
            appends_before_gen: 0,
            fsyncs_before_gen: 0,
            torn_bytes: 0,
            torn_truncations: 0,
            recovery_ms: 0,
            retries,
            degraded: None,
            keys_file,
            _lock: lock,
        })
    }

    /// Opens an existing deployment: reads the manifest, loads every sealed
    /// segment and the tail pair (truncating a torn WAL tail), deletes
    /// orphan files from an incomplete roll, and returns the storage state,
    /// one [`ShardPlan`] per shard (tail last), and the recovered key
    /// bindings. The caller rebuilds the in-memory shards from the plans
    /// and then records [`DurableState::recovery_ms`].
    #[allow(clippy::type_complexity)]
    pub fn open(
        dir: &Path,
        policy: WalSyncPolicy,
    ) -> DgResult<(Self, Vec<ShardPlan>, Vec<(String, u64)>)> {
        let lock = acquire_dir_lock(dir)?;
        let tail_gen = read_manifest(dir)?;
        let mut plans = Vec::with_capacity(tail_gen as usize + 1);
        let mut segment_bytes = 0u64;
        for i in 0..tail_gen {
            let path = segment_path(dir, i);
            let seg = Segment::read(&path)?;
            if seg.meta.shard_index != i {
                return Err(corrupt(format!(
                    "segment {} claims shard index {}, expected {i}",
                    path.display(),
                    seg.meta.shard_index
                )));
            }
            segment_bytes += std::fs::metadata(&path).map_err(io_err)?.len();
            plans.push(ShardPlan {
                lower: seg.meta.lower,
                seed: seg.seed,
                events: seg.events,
            });
        }
        let tailseed = Segment::read(tailseed_path(dir, tail_gen))?;
        if tailseed.meta.shard_index != tail_gen || !tailseed.events.is_empty() {
            return Err(corrupt(format!(
                "tailseed for generation {tail_gen} is malformed"
            )));
        }
        let replay = Wal::open(wal_path(dir, tail_gen), policy)?;
        plans.push(ShardPlan {
            lower: tailseed.meta.lower,
            seed: tailseed.seed,
            events: replay.events,
        });
        let keys = read_keys(dir);
        let keys_file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(keys_path(dir))
            .map_err(io_err)?;
        let state = DurableState {
            dir: dir.to_path_buf(),
            wal: replay.wal,
            tail_gen,
            segment_bytes,
            appends_before_gen: 0,
            fsyncs_before_gen: 0,
            torn_bytes: replay.torn_bytes,
            torn_truncations: u64::from(replay.torn_bytes > 0),
            recovery_ms: 0,
            retries: 0,
            degraded: None,
            keys_file,
            _lock: lock,
        };
        state.remove_orphans();
        Ok((state, plans, keys))
    }

    /// Deletes files a crash mid-roll or mid-initialize left behind: any
    /// segment at or past the tail generation, and any tailseed/WAL of
    /// another generation. All best-effort.
    fn remove_orphans(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = parse_numbered(name, "segment-", ".seg")
                .is_some_and(|i| i >= self.tail_gen)
                || parse_numbered(name, "tailseed-", ".seg").is_some_and(|g| g != self.tail_gen)
                || parse_numbered(name, "wal-", ".log").is_some_and(|g| g != self.tail_gen)
                || name == "MANIFEST.tmp"
                || name.ends_with(".seg.tmp");
            if stale {
                std::fs::remove_file(entry.path()).ok();
            }
        }
    }

    /// Appends one event record ahead of the in-memory apply. Returns the
    /// rollback offset for [`DurableState::rollback`].
    ///
    /// Transient IO errors are retried (truncating any partial record back
    /// first so the retry lands on a clean boundary). A fatal error rolls
    /// the record back best-effort and flips the tail to read-only degraded
    /// mode: this and every later append returns [`StoreError::Degraded`],
    /// reads keep serving, and the process stays up.
    pub fn append(&mut self, event: &Event) -> DgResult<u64> {
        if let Some(reason) = &self.degraded {
            return Err(DgError::Store(StoreError::Degraded(format!(
                "tail shard is read-only: {reason}"
            ))));
        }
        let before = self.wal.len();
        let mut attempt = 0u32;
        let err = loop {
            match self.wal.append(event) {
                Ok(off) => return Ok(off),
                Err(e) => {
                    let e = DgError::from(e);
                    if attempt < MAX_IO_RETRIES && is_transient(&e) {
                        attempt += 1;
                        self.retries += 1;
                        // A failed write may have left partial bytes; cut
                        // back to the record boundary before retrying.
                        if self.wal.truncate_to(before).is_err() {
                            break e;
                        }
                        backoff(attempt);
                    } else {
                        break e;
                    }
                }
            }
        };
        // Fatal: undo the partial record (best-effort — recovery repairs a
        // torn tail anyway) and degrade instead of crashing.
        self.wal.truncate_to(before).ok();
        self.degraded = Some(err.to_string());
        Err(DgError::Store(StoreError::Degraded(format!(
            "tail append failed, shard now read-only: {err}"
        ))))
    }

    /// Appends a whole batch write-ahead, as one unit: every record lands or
    /// none do. Returns the batch's start offset — [`DurableState::rollback`]
    /// with it removes the entire batch, never leaving a prefix on disk.
    ///
    /// Retry and degradation accounting is per *batch*, not per event: a
    /// transient fault truncates back to the batch start, counts one retry,
    /// and rewrites the whole batch; a fatal fault counts one degraded-mode
    /// transition, exactly as a failed single append would.
    pub fn append_batch(&mut self, events: &[Event]) -> DgResult<u64> {
        if let Some(reason) = &self.degraded {
            return Err(DgError::Store(StoreError::Degraded(format!(
                "tail shard is read-only: {reason}"
            ))));
        }
        let start = self.wal.len();
        let mut attempt = 0u32;
        let err = loop {
            let failed = events
                .iter()
                .find_map(|ev| self.wal.append(ev).err().map(DgError::from));
            match failed {
                None => return Ok(start),
                Some(e) => {
                    if attempt < MAX_IO_RETRIES && is_transient(&e) {
                        attempt += 1;
                        self.retries += 1;
                        // Cut the partial batch (and any torn record) back to
                        // the batch boundary before rewriting it whole.
                        if self.wal.truncate_to(start).is_err() {
                            break e;
                        }
                        backoff(attempt);
                    } else {
                        break e;
                    }
                }
            }
        };
        self.wal.truncate_to(start).ok();
        self.degraded = Some(err.to_string());
        Err(DgError::Store(StoreError::Degraded(format!(
            "tail batch append failed, shard now read-only: {err}"
        ))))
    }

    /// Undoes the record(s) written from `offset` after the in-memory apply
    /// rejected the event or batch.
    pub fn rollback(&mut self, offset: u64) -> DgResult<()> {
        Ok(self.wal.truncate_to(offset)?)
    }

    /// The crash-atomic roll protocol (module docs): seals the current tail
    /// into a segment, starts generation `tail_gen + 1` whose WAL holds the
    /// roll-triggering `events` (one for a plain `APPEND`, the whole batch
    /// for an `APPEND BATCH` — a recovered tail never sees a batch prefix),
    /// and commits by swapping the manifest.
    /// Nothing is visible to recovery until the swap; after `Ok` the caller
    /// must install the new in-memory tail shard.
    /// A failure anywhere before the commit point leaves the old generation
    /// authoritative (the trigger events correctly unacknowledged); transient
    /// errors at each step are retried before giving up.
    pub fn roll(
        &mut self,
        boundary: Timestamp,
        new_seed: &[Event],
        events: &[Event],
    ) -> DgResult<()> {
        if let Some(reason) = &self.degraded {
            return Err(DgError::Store(StoreError::Degraded(format!(
                "tail shard is read-only: {reason}"
            ))));
        }
        let old_gen = self.tail_gen;
        let new_gen = old_gen + 1;
        let mut retries = 0u64;
        // 1. Seal: the old tail's full contents are its seed file plus the
        //    complete WAL (every record intact — this log was never torn).
        let wal = &mut self.wal;
        retried(&mut retries, || Ok(wal.sync()?))?;
        let old_seed = Segment::read(tailseed_path(&self.dir, old_gen))?;
        let wal_events = read_wal_events(self.wal.path())?;
        let sealed_path = segment_path(&self.dir, old_gen);
        let sealed = Segment {
            meta: old_seed.meta,
            seed: old_seed.seed,
            events: wal_events,
        };
        retried(&mut retries, || Ok(sealed.write(&sealed_path)?))?;
        // 2–3. The new generation's tailseed and WAL (trigger event synced
        //      before the commit point so an acked roll survives a crash).
        let new_tailseed = Segment {
            meta: SegmentMeta {
                shard_index: new_gen,
                lower: Some(boundary),
            },
            seed: new_seed.to_vec(),
            events: Vec::new(),
        };
        let new_tailseed_path = tailseed_path(&self.dir, new_gen);
        retried(&mut retries, || Ok(new_tailseed.write(&new_tailseed_path)?))?;
        let new_wal_path = wal_path(&self.dir, new_gen);
        let policy = self.wal.policy();
        let mut new_wal = retried(&mut retries, || Ok(Wal::create(&new_wal_path, policy)?))?;
        retried(&mut retries, || {
            // Restart the trigger records from scratch on each retry: the
            // fresh log is empty, so truncating to zero is always right.
            new_wal.truncate_to(0)?;
            for event in events {
                new_wal.append(event)?;
            }
            Ok(new_wal.sync()?)
        })?;
        // 4. Commit.
        retried(&mut retries, || write_manifest(&self.dir, new_gen))?;
        self.retries += retries;
        // 5. Best-effort cleanup; orphan removal at the next open catches
        //    anything missed.
        std::fs::remove_file(tailseed_path(&self.dir, old_gen)).ok();
        std::fs::remove_file(wal_path(&self.dir, old_gen)).ok();
        self.segment_bytes += std::fs::metadata(&sealed_path)
            .map(|m| m.len())
            .unwrap_or(0);
        self.appends_before_gen += self.wal.appends();
        self.fsyncs_before_gen += self.wal.fsyncs();
        self.wal = new_wal;
        self.tail_gen = new_gen;
        Ok(())
    }

    /// Drops the last WAL record: recovery's second chance when the rebuild
    /// rejects the final replayed event (a crash between the write-ahead
    /// and the rollback of a failed apply leaves exactly one such record).
    pub fn drop_last_wal_record(&mut self, record_len: u64) -> DgResult<()> {
        let new_len = self.wal.len().saturating_sub(record_len);
        self.wal.truncate_to(new_len)?;
        self.wal.sync()?;
        self.torn_bytes += record_len;
        self.torn_truncations += 1;
        Ok(())
    }

    /// Forces any buffered WAL bytes down now (shutdown path). A no-op in
    /// degraded mode: the tail is read-only and the device already failed.
    pub fn sync(&mut self) -> DgResult<()> {
        if self.degraded.is_some() {
            return Ok(());
        }
        Ok(self.wal.sync()?)
    }

    /// Durably records one key binding so `BIND` names survive restart.
    /// Refused (like all writes) while degraded.
    pub fn record_key(&mut self, key: &str, node: u64) -> DgResult<()> {
        if let Some(reason) = &self.degraded {
            return Err(DgError::Store(StoreError::Degraded(format!(
                "tail shard is read-only: {reason}"
            ))));
        }
        let mut retries = 0u64;
        let path = keys_path(&self.dir);
        let keys_file = &mut self.keys_file;
        let result = retried(&mut retries, || {
            append_key_record(keys_file, &path, key, node)
        });
        self.retries += retries;
        result
    }

    /// Whether a fatal write failure flipped the tail to read-only.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// The error that degraded the tail, or `None` while healthy.
    pub fn degraded_reason(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// Transient IO errors retried on the write path so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Number of sealed segment files.
    pub fn segments(&self) -> u64 {
        self.tail_gen
    }

    /// Total bytes of sealed segment files.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Current WAL length in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len()
    }

    /// WAL appends this process performed (all generations).
    pub fn wal_appends(&self) -> u64 {
        self.appends_before_gen + self.wal.appends()
    }

    /// WAL fsyncs this process performed (all generations).
    pub fn wal_fsyncs(&self) -> u64 {
        self.fsyncs_before_gen + self.wal.fsyncs()
    }

    /// The configured sync policy.
    pub fn policy(&self) -> WalSyncPolicy {
        self.wal.policy()
    }
}

/// Parses `prefix<number>suffix` file names.
fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("durable-test-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn plan(lower: Option<i64>, seed: Vec<Event>, events: Vec<Event>) -> ShardPlan {
        ShardPlan {
            lower: lower.map(Timestamp),
            seed,
            events,
        }
    }

    #[test]
    fn initialize_open_round_trip() {
        let dir = tmpdir("init");
        let plans = vec![
            plan(
                None,
                vec![],
                vec![Event::add_node(1, 1), Event::add_node(2, 2)],
            ),
            plan(
                Some(10),
                vec![Event::add_node(9, 1), Event::add_node(9, 2)],
                vec![Event::add_node(10, 3)],
            ),
        ];
        let st = DurableState::initialize(&dir, WalSyncPolicy::Always, &plans).unwrap();
        assert_eq!(st.segments(), 1);
        assert!(st.wal_bytes() > 0);
        drop(st);

        let (st, recovered, keys) = DurableState::open(&dir, WalSyncPolicy::Always).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].lower, None);
        assert_eq!(recovered[0].events.len(), 2);
        assert_eq!(recovered[1].lower, Some(Timestamp(10)));
        assert_eq!(recovered[1].seed.len(), 2);
        assert_eq!(recovered[1].events, vec![Event::add_node(10, 3)]);
        assert_eq!(st.torn_truncations, 0);
        assert!(keys.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn roll_commits_atomically_and_cleans_up() {
        let dir = tmpdir("roll");
        let plans = vec![plan(None, vec![], vec![Event::add_node(1, 1)])];
        let mut st = DurableState::initialize(&dir, WalSyncPolicy::Always, &plans).unwrap();
        st.append(&Event::add_node(2, 2)).unwrap();
        let trigger = Event::add_node(5, 3);
        st.roll(
            Timestamp(5),
            &[Event::add_node(4, 1), Event::add_node(4, 2)],
            std::slice::from_ref(&trigger),
        )
        .unwrap();
        assert_eq!(st.segments(), 1);
        assert!(segment_path(&dir, 0).is_file());
        assert!(!wal_path(&dir, 0).exists());
        assert!(!tailseed_path(&dir, 0).exists());
        drop(st);

        let (st, recovered, _keys) = DurableState::open(&dir, WalSyncPolicy::Always).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(
            recovered[0].events,
            vec![Event::add_node(1, 1), Event::add_node(2, 2)]
        );
        assert_eq!(recovered[1].lower, Some(Timestamp(5)));
        assert_eq!(recovered[1].events, vec![trigger]);
        assert_eq!(st.segments(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphans_from_an_incomplete_roll_are_ignored_and_removed() {
        let dir = tmpdir("orphans");
        let plans = vec![plan(None, vec![], vec![Event::add_node(1, 1)])];
        drop(DurableState::initialize(&dir, WalSyncPolicy::Always, &plans).unwrap());
        // Simulate a crash after roll steps 1–3 but before the manifest
        // swap: the sealed segment and new generation exist on disk, but
        // the manifest still points at generation 0.
        Segment {
            meta: SegmentMeta {
                shard_index: 0,
                lower: None,
            },
            seed: vec![],
            events: vec![Event::add_node(1, 1)],
        }
        .write(segment_path(&dir, 0))
        .unwrap();
        Segment {
            meta: SegmentMeta {
                shard_index: 1,
                lower: Some(Timestamp(5)),
            },
            seed: vec![Event::add_node(4, 1)],
            events: vec![],
        }
        .write(tailseed_path(&dir, 1))
        .unwrap();
        Wal::create(wal_path(&dir, 1), WalSyncPolicy::Off)
            .unwrap()
            .append(&Event::add_node(5, 9))
            .unwrap();

        let (_st, recovered, _keys) = DurableState::open(&dir, WalSyncPolicy::Always).unwrap();
        // The old generation won: one shard, the phantom roll's event gone.
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].events, vec![Event::add_node(1, 1)]);
        assert!(!segment_path(&dir, 0).exists());
        assert!(!tailseed_path(&dir, 1).exists());
        assert!(!wal_path(&dir, 1).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_clear_error() {
        let dir = tmpdir("nomanifest");
        assert!(!is_durable_dir(&dir));
        assert!(DurableState::open(&dir, WalSyncPolicy::Always).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_fatal_append_fault_degrades_instead_of_crashing() {
        let dir = tmpdir("degrade");
        let plans = vec![plan(None, vec![], vec![Event::add_node(1, 1)])];
        let mut st = DurableState::initialize(&dir, WalSyncPolicy::Always, &plans).unwrap();
        let scope = dir.to_string_lossy().to_string();
        faults::arm_scoped(
            "wal.append",
            kvstore::FaultKind::Enospc,
            0,
            Some(1),
            Some(&scope),
        );
        let err = st.append(&Event::add_node(2, 2)).unwrap_err();
        assert!(err.to_string().contains("DEGRADED"), "got: {err}");
        faults::clear("wal.append");
        // Degraded is sticky: even with the device healthy again, appends
        // are refused until a restart re-opens the directory.
        let err = st.append(&Event::add_node(3, 3)).unwrap_err();
        assert!(err.to_string().contains("DEGRADED"), "got: {err}");
        assert!(st.is_degraded());
        assert!(st.sync().is_ok(), "shutdown sync is a no-op when degraded");
        drop(st);
        // The un-acked record was rolled back; the acked prefix survives.
        let (st, recovered, _keys) = DurableState::open(&dir, WalSyncPolicy::Always).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].events, vec![Event::add_node(1, 1)]);
        assert!(!st.is_degraded(), "a fresh open starts healthy");
        drop(st);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_append_faults_are_retried() {
        let dir = tmpdir("transient");
        let plans = vec![plan(None, vec![], vec![Event::add_node(1, 1)])];
        let mut st = DurableState::initialize(&dir, WalSyncPolicy::Always, &plans).unwrap();
        let scope = dir.to_string_lossy().to_string();
        faults::arm_scoped(
            "wal.append",
            kvstore::FaultKind::Transient,
            0,
            Some(2),
            Some(&scope),
        );
        st.append(&Event::add_node(2, 2))
            .expect("transient faults retry through");
        assert!(st.retries() >= 2);
        assert!(!st.is_degraded());
        drop(st);
        let (_st, recovered, _keys) = DurableState::open(&dir, WalSyncPolicy::Always).unwrap();
        assert_eq!(
            recovered[0].events,
            vec![Event::add_node(1, 1), Event::add_node(2, 2)]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn the_dir_lock_refuses_a_second_opener_and_reclaims_stale_locks() {
        let dir = tmpdir("lock");
        let plans = vec![plan(None, vec![], vec![Event::add_node(1, 1)])];
        let st = DurableState::initialize(&dir, WalSyncPolicy::Always, &plans).unwrap();
        // Second open while the first handle is alive: clear, typed error.
        let err = match DurableState::open(&dir, WalSyncPolicy::Always) {
            Err(e) => e,
            Ok(_) => panic!("a second opener must be refused"),
        };
        assert!(err.to_string().contains("locked"), "got: {err}");
        drop(st);
        assert!(!lock_path(&dir).exists(), "drop releases the lock");
        // A lock left by a dead process is stale: detected and reclaimed.
        std::fs::write(lock_path(&dir), "999999999").unwrap();
        let (st, _, _) =
            DurableState::open(&dir, WalSyncPolicy::Always).expect("stale lock is reclaimed");
        drop(st);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn key_bindings_survive_restart() {
        let dir = tmpdir("keys");
        let plans = vec![plan(None, vec![], vec![Event::add_node(1, 1)])];
        let mut st = DurableState::initialize(&dir, WalSyncPolicy::Always, &plans).unwrap();
        st.record_key("alice", 7).unwrap();
        st.record_key("bob", 11).unwrap();
        drop(st);
        let (st, _, keys) = DurableState::open(&dir, WalSyncPolicy::Always).unwrap();
        assert_eq!(
            keys,
            vec![("alice".to_string(), 7), ("bob".to_string(), 11)]
        );
        drop(st);
        // A torn tail (crash mid-bind) drops only the torn record.
        let full = std::fs::read(keys_path(&dir)).unwrap();
        std::fs::write(keys_path(&dir), &full[..full.len() - 3]).unwrap();
        let (st, _, keys) = DurableState::open(&dir, WalSyncPolicy::Always).unwrap();
        assert_eq!(keys, vec![("alice".to_string(), 7)]);
        drop(st);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn initialize_replaces_previous_key_bindings() {
        let dir = tmpdir("keys-reinit");
        let plans = vec![plan(None, vec![], vec![Event::add_node(1, 1)])];
        let mut st = DurableState::initialize(&dir, WalSyncPolicy::Always, &plans).unwrap();
        st.record_key("old", 1).unwrap();
        drop(st);
        drop(DurableState::initialize(&dir, WalSyncPolicy::Always, &plans).unwrap());
        let (st, _, keys) = DurableState::open(&dir, WalSyncPolicy::Always).unwrap();
        assert!(keys.is_empty(), "re-initialize clears old bindings");
        drop(st);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_plans_is_a_typed_error_not_a_panic() {
        let dir = tmpdir("zeroplans");
        let err = match DurableState::initialize(&dir, WalSyncPolicy::Always, &[]) {
            Err(e) => e,
            Ok(_) => panic!("zero plans must be refused"),
        };
        assert!(err.to_string().contains("zero shard plans"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
