//! # historygraph — a historical graph database
//!
//! A from-scratch Rust reproduction of *Khurana & Deshpande, "Efficient
//! Snapshot Retrieval over Historical Graph Data" (ICDE 2013)*. The system
//! stores the entire history of an evolving graph and supports efficient
//! retrieval of arbitrary historical snapshots — singly, in batches, over
//! intervals, or through Boolean time expressions — while keeping the current
//! state available for updates, and keeps the many retrieved snapshots in
//! memory compactly by overlaying them.
//!
//! The heavy lifting is done by the workspace crates re-exported here:
//!
//! | crate | role |
//! |---|---|
//! | [`tgraph`] | temporal graph data model (events, snapshots, deltas) |
//! | [`kvstore`] | key–value storage substrate (memory / disk / partitioned) |
//! | [`deltagraph`] | the DeltaGraph hierarchical snapshot index |
//! | [`graphpool`] | the GraphPool overlaid in-memory multi-snapshot store |
//! | [`baselines`] | Copy+Log, Log, and interval-tree comparators |
//! | [`analytics`] | Pregel-like framework, PageRank, components, triangles |
//! | [`datagen`] | seeded synthetic datasets standing in for DBLP / patents |
//!
//! This crate adds the system-level facade of Figure 2: [`GraphManager`]
//! (GraphPool maintenance), the embedded history manager (DeltaGraph
//! planning and I/O), and the query-manager duties of translating external
//! keys to internal ids and attribute-option strings into typed options.
//! On top of the facade sit [`SharedGraphManager`] (the concurrent
//! read/write split used by the TCP server), the [`cache`] module's
//! shared snapshot cache, which serves hot point retrievals from one
//! reference-counted pool overlay shared across sessions, and the
//! [`sharded`] module's [`ShardedGraphManager`]: a router over N
//! time-range shards (each a complete `SharedGraphManager` with its own
//! caches) so appends stop serializing against historical reads.
//!
//! ```
//! use historygraph::{GraphManager, GraphManagerConfig};
//! use tgraph::Timestamp;
//!
//! let trace = datagen::toy_trace();
//! let mut gm = GraphManager::build_in_memory(&trace.events, GraphManagerConfig::default()).unwrap();
//! // "Retrieve the historical graph structure along with node names as of time 6"
//! let handle = gm.get_hist_graph(Timestamp(6), "+node:name").unwrap();
//! let view = gm.graph(handle);
//! assert_eq!(view.node_count(), 3);
//! ```

pub use analytics;
pub use baselines;
pub use datagen;
pub use deltagraph;
pub use graphpool;
pub use kvstore;
pub use tgraph;

pub mod cache;
pub mod durable;
pub mod manager;
pub mod response_cache;
pub mod sharded;
pub mod shared;
pub mod source;

pub use cache::{CacheEntryInfo, CacheStats, SnapshotCache};
pub use durable::is_durable_dir;
pub use kvstore::wal::WalSyncPolicy;
pub use manager::{BatchOutcome, ContractPolicy, GraphManager, GraphManagerConfig};
pub use response_cache::{ResponseCache, ResponseCacheStats, WireFormat};
pub use sharded::{
    CacheOverview, HealthInfo, ShardHealth, ShardInfo, ShardedConfig, ShardedGraphManager,
    ShardedSession, StorageInfo,
};
pub use shared::{CachedPoint, PoolSession, SharedGraphManager};
pub use source::DeltaGraphSource;
