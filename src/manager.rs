//! The `GraphManager`: the system facade of Figure 2.
//!
//! It owns the DeltaGraph index (history manager duties: planning and disk
//! I/O), the GraphPool (overlaying retrieved graphs and cleaning them up),
//! and the lookup table translating application-level keys to internal node
//! ids (the query-manager duty that the paper notes is application specific).

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use deltagraph::{DeltaGraph, DeltaGraphConfig, DgError, DgResult, IndexStats};
use graphpool::{GraphId, GraphPool, GraphView};
use kvstore::{DiskStore, KeyValueStore, MemStore};
use tgraph::{AttrOptions, Event, NodeId, Snapshot, TimeExpression, Timestamp};

use crate::cache::{CacheEntryInfo, CacheStats, SnapshotCache};
use crate::response_cache::{ResponseCache, ResponseCacheStats, WireFormat};

/// Configuration of a [`GraphManager`].
#[derive(Clone, Debug, Default)]
pub struct GraphManagerConfig {
    /// DeltaGraph construction parameters.
    pub index: DeltaGraphConfig,
    /// If `true`, retrieved historical graphs are overlaid as *dependent* on
    /// the current graph whenever the number of differing elements is small
    /// relative to the graph size (the query-time decision of Section 6).
    pub dependent_overlays: bool,
    /// Capacity of the shared snapshot cache used by point retrievals routed
    /// through [`crate::PoolSession::retrieve_cached`]: an LRU of
    /// materialized snapshots keyed by `(t, AttrOptions)`, whose pool
    /// overlays are shared (reference-counted) across sessions. `0` (the
    /// default) disables caching; the paper-API methods on [`GraphManager`]
    /// itself never consult the cache.
    pub snapshot_cache_capacity: usize,
    /// Capacity of the rendered-response byte cache (entries; 0 — the
    /// default — disables it): fully framed replies for hot point queries,
    /// keyed by `(t, AttrOptions, WireFormat)` and kept consistent by the
    /// same `APPEND` invalidation rule as the snapshot cache. See
    /// [`crate::response_cache`].
    pub response_cache_capacity: usize,
    /// Byte budget of the rendered-response cache (0 — the default —
    /// leaves the byte total uncapped): on top of the entry count, the
    /// cache evicts LRU replies until the cached bytes fit this budget.
    pub response_cache_bytes: u64,
}

impl GraphManagerConfig {
    /// Uses the given DeltaGraph configuration.
    pub fn with_index(mut self, index: DeltaGraphConfig) -> Self {
        self.index = index;
        self
    }

    /// Enables the shared snapshot cache with the given capacity (entries).
    pub fn with_snapshot_cache(mut self, capacity: usize) -> Self {
        self.snapshot_cache_capacity = capacity;
        self
    }

    /// Enables the rendered-response byte cache with the given capacity
    /// (entries).
    pub fn with_response_cache(mut self, capacity: usize) -> Self {
        self.response_cache_capacity = capacity;
        self
    }

    /// Caps the rendered-response cache at the given total reply bytes
    /// (0 = uncapped).
    pub fn with_response_cache_bytes(mut self, bytes: u64) -> Self {
        self.response_cache_bytes = bytes;
        self
    }
}

/// The top-level handle to a historical graph database.
pub struct GraphManager {
    index: DeltaGraph,
    pool: GraphPool,
    /// application key → internal node id (QueryManager lookup table)
    key_to_node: HashMap<String, NodeId>,
    node_to_key: HashMap<NodeId, String>,
    config: GraphManagerConfig,
    /// The pool handle of the current graph's last full overlay.
    current_seeded: bool,
    /// Shared snapshot cache (disabled at capacity 0); see [`crate::cache`].
    cache: SnapshotCache,
    /// Rendered-response byte cache (disabled at capacity 0); see
    /// [`crate::response_cache`].
    response_cache: ResponseCache,
    /// Bumped on every successful append; guards cache inserts against
    /// racing with invalidation (see [`GraphManager::append_epoch`]).
    append_epoch: u64,
}

impl GraphManager {
    /// Builds the database over a complete event trace, storing the index in
    /// memory.
    pub fn build_in_memory(
        events: &tgraph::EventList,
        config: GraphManagerConfig,
    ) -> DgResult<Self> {
        Self::build(events, config, Arc::new(MemStore::new()))
    }

    /// Builds the database over a complete event trace, storing the index in
    /// an on-disk key–value store rooted at `path`.
    pub fn build_on_disk(
        events: &tgraph::EventList,
        config: GraphManagerConfig,
        path: impl AsRef<Path>,
    ) -> DgResult<Self> {
        let store = DiskStore::create(path.as_ref().join("deltagraph.log"))?;
        Self::build(events, config, Arc::new(store))
    }

    /// Rebuilds the database from a sealed shard segment's contents: the
    /// seed events collapse all state before the shard's range and the real
    /// events complete it, so the result is indistinguishable from the
    /// manager that originally produced the shard (key bindings excepted —
    /// segments do not persist them).
    pub fn build_from_segment(
        segment: &kvstore::Segment,
        config: GraphManagerConfig,
        store: Arc<dyn KeyValueStore>,
    ) -> DgResult<Self> {
        let mut list = segment.seed.clone();
        list.extend_from_slice(&segment.events);
        Self::build(&tgraph::EventList::from_events(list), config, store)
    }

    /// Builds the database over a complete event trace on the given backing
    /// store.
    pub fn build(
        events: &tgraph::EventList,
        config: GraphManagerConfig,
        store: Arc<dyn KeyValueStore>,
    ) -> DgResult<Self> {
        let index = DeltaGraph::build(events, config.index.clone(), store)?;
        let mut pool = GraphPool::new();
        pool.set_current(index.current_graph());
        let cache = SnapshotCache::new(config.snapshot_cache_capacity);
        let response_cache = ResponseCache::with_byte_budget(
            config.response_cache_capacity,
            config.response_cache_bytes,
        );
        Ok(GraphManager {
            index,
            pool,
            key_to_node: HashMap::new(),
            node_to_key: HashMap::new(),
            config,
            current_seeded: true,
            cache,
            response_cache,
            append_epoch: 0,
        })
    }

    // ------------------------------------------------------------------
    // Snapshot retrieval (the paper's programmatic API, Section 3.2.1)
    // ------------------------------------------------------------------

    /// `GetHistGraph(Time t, String attr_options)`: retrieves the snapshot as
    /// of `t`, overlays it onto the GraphPool, and returns its handle.
    pub fn get_hist_graph(&mut self, t: Timestamp, attr_options: &str) -> DgResult<GraphId> {
        let opts = AttrOptions::parse(attr_options).map_err(DgError::Model)?;
        let snapshot = self.index.get_snapshot(t, &opts)?;
        Ok(self.overlay(&snapshot, t))
    }

    /// `GetHistGraphs(List<Time>, String attr_options)`: multipoint retrieval
    /// through the Steiner-tree planner; all snapshots share fetched deltas
    /// and are overlaid together.
    pub fn get_hist_graphs(
        &mut self,
        times: &[Timestamp],
        attr_options: &str,
    ) -> DgResult<Vec<GraphId>> {
        let opts = AttrOptions::parse(attr_options).map_err(DgError::Model)?;
        let snapshots = self.index.get_snapshots(times, &opts)?;
        Ok(snapshots
            .into_iter()
            .zip(times)
            .map(|(snap, &t)| self.overlay(&snap, t))
            .collect())
    }

    /// `GetHistGraph(TimeExpression, String attr_options)`: retrieves the
    /// hypothetical graph satisfying a Boolean expression over time points.
    ///
    /// An expression referencing no time points is rejected: there is no
    /// meaningful snapshot (or overlay anchor) for it.
    pub fn get_hist_graph_expr(
        &mut self,
        expr: &TimeExpression,
        attr_options: &str,
    ) -> DgResult<GraphId> {
        let opts = AttrOptions::parse(attr_options).map_err(DgError::Model)?;
        let anchor = *expr.times.last().ok_or_else(|| {
            DgError::InvalidParameter("time expression references no time points".into())
        })?;
        let snapshot = self.index.get_time_expression(expr, &opts)?;
        Ok(self.overlay(&snapshot, anchor))
    }

    /// `GetHistGraphInterval(ts, te, attr_options)`: the graph over elements
    /// added during `[ts, te)` plus the transient events of that window.
    pub fn get_hist_graph_interval(
        &mut self,
        start: Timestamp,
        end: Timestamp,
        attr_options: &str,
    ) -> DgResult<(GraphId, Vec<Event>)> {
        let opts = AttrOptions::parse(attr_options).map_err(DgError::Model)?;
        let (snapshot, transients) = self.index.get_snapshot_interval(start, end, &opts)?;
        Ok((self.overlay(&snapshot, start), transients))
    }

    fn overlay(&mut self, snapshot: &Snapshot, t: Timestamp) -> GraphId {
        if self.config.dependent_overlays && self.current_seeded {
            // Query-time decision: overlay as dependent on the current graph
            // when the difference is small relative to the snapshot size.
            let current = self.index.current_graph();
            let diff = tgraph::Delta::between(current, snapshot).change_count();
            if diff * 4 < snapshot.element_count().max(1) {
                return self
                    .pool
                    .add_historical_dependent(snapshot, t, graphpool::CURRENT_GRAPH);
            }
        }
        self.pool.add_historical(snapshot, t)
    }

    /// Overlays an already-retrieved snapshot onto the GraphPool and returns
    /// its handle. This is the overlay half of [`GraphManager::get_hist_graph`],
    /// exposed so callers that compute snapshots under a shared read lock
    /// (see [`crate::SharedGraphManager`]) can attach them to the pool
    /// without recomputing.
    pub fn overlay_snapshot(&mut self, snapshot: &Snapshot, t: Timestamp) -> GraphId {
        self.overlay(snapshot, t)
    }

    // ------------------------------------------------------------------
    // Shared snapshot cache (see `crate::cache`)
    // ------------------------------------------------------------------

    /// Cache lookup for a point retrieval. On a hit the overlay gains one
    /// reference for the calling session (which must eventually
    /// [`GraphManager::release`] it). `count` controls the hit/miss
    /// counters; the double-checked re-probe after a miss passes `false`.
    pub(crate) fn cache_acquire(
        &mut self,
        t: Timestamp,
        opts: &AttrOptions,
        count: bool,
    ) -> Option<(Arc<Snapshot>, GraphId)> {
        let (snapshot, overlay) = self.cache.lookup(t, opts, count)?;
        if !self.pool.retain(overlay) {
            // Defensive: the cache's own reference should keep the overlay
            // active, but never hand out a dead handle.
            return None;
        }
        Some((snapshot, overlay))
    }

    /// Overlays a freshly computed snapshot and, when the cache is enabled,
    /// caches it. The returned handle carries one reference for the calling
    /// session; the cache holds its own (the registration reference), so
    /// the overlay outlives the session for future sharers.
    ///
    /// `computed_at_epoch` is the [`GraphManager::append_epoch`] observed
    /// while the snapshot was computed (under the read lock). If an append
    /// has landed since, the snapshot may predate events at or before `t`,
    /// so it is overlaid for the calling session only and *not* cached —
    /// a racing insert must never resurrect an invalidated time range.
    pub(crate) fn cache_insert_overlay(
        &mut self,
        snapshot: &Arc<Snapshot>,
        t: Timestamp,
        opts: &AttrOptions,
        computed_at_epoch: u64,
    ) -> GraphId {
        if self.cache.capacity() == 0 || self.append_epoch != computed_at_epoch {
            // Plain session-owned overlay, nothing cached.
            return self.overlay(snapshot.as_ref(), t);
        }
        // Cached overlays are always self-contained (never dependent on the
        // current graph): a dependent overlay's view silently changes when
        // appends mutate its dependency, which would corrupt cache entries
        // at t < event-time — exactly the entries invalidation keeps.
        let id = self.pool.add_historical(snapshot.as_ref(), t);
        self.pool.retain(id); // the session's reference (registration = cache's)
        for displaced in self.cache.insert(t, opts.clone(), Arc::clone(snapshot), id) {
            self.pool.release(displaced);
        }
        id
    }

    /// Read-only cache probe: returns the cached snapshot for `(t, opts)`
    /// without touching overlay references. Used by queries that only need
    /// the snapshot's data (e.g. `NODE ... AT`), not a pool handle. Hits
    /// and misses both count (a failed probe forces the caller into a
    /// direct computation).
    pub(crate) fn cache_peek(&mut self, t: Timestamp, opts: &AttrOptions) -> Option<Arc<Snapshot>> {
        self.cache.peek(t, opts)
    }

    /// Number of successful appends so far. Snapshot computations record
    /// the epoch they ran under so a result that raced an append is never
    /// inserted into the cache (the insert path compares epochs and falls
    /// back to a plain session-owned overlay on mismatch). The response
    /// cache applies the same guard to rendered bytes.
    pub fn append_epoch(&self) -> u64 {
        self.append_epoch
    }

    /// Looks up the pre-framed reply for `(t, opts, format)` in the
    /// rendered-response cache, counting a hit or miss.
    pub fn response_cache_get(
        &mut self,
        t: Timestamp,
        opts: &AttrOptions,
        format: WireFormat,
    ) -> Option<Arc<[u8]>> {
        self.response_cache.get(t, opts, format)
    }

    /// Caches a freshly framed reply. `computed_at_epoch` is the
    /// [`GraphManager::append_epoch`] the underlying snapshot was acquired
    /// under: if an append has landed since, the bytes may predate events at
    /// or before `t`, so they are discarded rather than cached — a racing
    /// insert must never resurrect an invalidated time range. Returns
    /// whether the reply was cached.
    pub fn response_cache_put(
        &mut self,
        t: Timestamp,
        opts: &AttrOptions,
        format: WireFormat,
        bytes: Arc<[u8]>,
        computed_at_epoch: u64,
    ) -> bool {
        if self.response_cache.capacity() == 0 || self.append_epoch != computed_at_epoch {
            return false;
        }
        self.response_cache.insert(t, opts.clone(), format, bytes);
        true
    }

    /// The response cache's behavior counters.
    pub fn response_cache_stats(&self) -> ResponseCacheStats {
        self.response_cache.stats()
    }

    /// Number of replies currently cached.
    pub fn response_cache_len(&self) -> usize {
        self.response_cache.len()
    }

    /// Capacity of the response cache (0 = disabled).
    pub fn response_cache_capacity(&self) -> usize {
        self.response_cache.capacity()
    }

    /// Byte budget of the response cache (0 = uncapped).
    pub fn response_cache_byte_budget(&self) -> u64 {
        self.response_cache.byte_budget()
    }

    /// The snapshot cache's behavior counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of snapshots currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Capacity of the snapshot cache (0 = disabled).
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// The cached entries with live overlay reference counts, sorted by
    /// `(t, opts)` — the payload of `STATS CACHE`.
    pub fn cache_entries(&self) -> Vec<CacheEntryInfo> {
        self.cache
            .entry_list()
            .into_iter()
            .map(|(t, opts, overlay)| CacheEntryInfo {
                t,
                opts: opts.canonical_string(),
                overlay,
                refs: self.pool.refcount(overlay).unwrap_or(0),
            })
            .collect()
    }

    /// A read view of a retrieved graph.
    pub fn graph(&self, id: GraphId) -> GraphView<'_> {
        self.pool.view(id)
    }

    /// Releases a retrieved graph (cleanup happens lazily).
    pub fn release(&mut self, id: GraphId) {
        self.pool.release(id);
    }

    /// Releases every retrieved historical graph (materialized index nodes
    /// and the current graph stay), purges the snapshot cache, runs the
    /// cleaner, and returns the number of graphs released. Outstanding
    /// references are ignored — this is an administrative, pool-wide reset;
    /// per-session cleanup (the server's disconnect path and the `RELEASE
    /// ALL` verb) goes through [`crate::PoolSession`], which only drops the
    /// session's own references.
    pub fn release_all(&mut self) -> usize {
        let ids: Vec<GraphId> = self
            .pool
            .active_graphs()
            .into_iter()
            .filter(|&id| {
                id != graphpool::CURRENT_GRAPH
                    && self
                        .pool
                        .entry(id)
                        .is_some_and(|e| e.kind == graphpool::GraphKind::Historical)
            })
            .collect();
        let released = ids.len();
        self.cache.purge(); // cached overlays are force-released below
        self.response_cache.purge();
        for id in ids {
            self.pool.force_release(id);
        }
        self.pool.cleanup();
        released
    }

    /// Runs the lazy cleaner; returns the number of union elements removed.
    pub fn cleanup(&mut self) -> usize {
        self.pool.cleanup()
    }

    // ------------------------------------------------------------------
    // Updates and materialization
    // ------------------------------------------------------------------

    /// Appends a new event: the current graph, the GraphPool overlay of the
    /// current graph, and the index are all updated.
    ///
    /// The index goes first — it validates the event (chronology, duplicate
    /// elements) — so a rejected event never reaches the pool and the two
    /// views of the current graph cannot diverge. Cached snapshots at or
    /// after the event's time are invalidated (they could now differ from a
    /// fresh computation); entries strictly before it stay valid.
    pub fn append_event(&mut self, event: Event) -> DgResult<()> {
        self.index.append_event(event.clone())?;
        self.pool.apply_event_to_current(&event);
        self.append_epoch += 1;
        for overlay in self.cache.invalidate_from(event.time) {
            self.pool.release(overlay);
        }
        self.response_cache.invalidate_from(event.time);
        Ok(())
    }

    /// Appends a batch of events.
    pub fn append_events(&mut self, events: impl IntoIterator<Item = Event>) -> DgResult<()> {
        for ev in events {
            self.append_event(ev)?;
        }
        Ok(())
    }

    /// Materializes the DeltaGraph root in memory.
    pub fn materialize_root(&mut self) -> DgResult<()> {
        self.index.materialize_root().map(|_| ())
    }

    /// Materializes every node `depth` levels below the root.
    pub fn materialize_descendants(&mut self, depth: u32) -> DgResult<usize> {
        Ok(self.index.materialize_descendants(depth)?.len())
    }

    // ------------------------------------------------------------------
    // QueryManager lookup table (external key ↔ internal id)
    // ------------------------------------------------------------------

    /// Registers an application-level key (user name, paper title, ...) for a
    /// node id.
    pub fn register_key(&mut self, key: impl Into<String>, node: NodeId) {
        let key = key.into();
        self.key_to_node.insert(key.clone(), node);
        self.node_to_key.insert(node, key);
    }

    /// Resolves an application-level key to its internal node id.
    pub fn resolve_key(&self, key: &str) -> Option<NodeId> {
        self.key_to_node.get(key).copied()
    }

    /// The application-level key of an internal node id, if registered.
    pub fn key_of(&self, node: NodeId) -> Option<&str> {
        self.node_to_key.get(&node).map(String::as_str)
    }

    /// Every registered `(key, node)` binding. Used when rolling a new tail
    /// shard (see [`crate::ShardedGraphManager`]): the fresh shard inherits
    /// the table so keys resolve on every shard.
    pub fn key_bindings(&self) -> Vec<(String, NodeId)> {
        self.key_to_node
            .iter()
            .map(|(k, n)| (k.clone(), *n))
            .collect()
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The underlying DeltaGraph index.
    pub fn index(&self) -> &DeltaGraph {
        &self.index
    }

    /// Mutable access to the underlying DeltaGraph index (for benchmark
    /// harnesses that tune materialization or retrieval threads directly).
    pub fn index_mut(&mut self) -> &mut DeltaGraph {
        &mut self.index
    }

    /// The underlying GraphPool.
    pub fn pool(&self) -> &GraphPool {
        &self.pool
    }

    /// Index statistics (leaves, height, stored bytes, ...).
    pub fn stats(&self) -> IndexStats {
        self.index.stats()
    }

    /// Approximate memory held by the GraphPool, in bytes.
    pub fn pool_memory(&self) -> usize {
        self.pool.approx_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::toy_trace;
    use deltagraph::DifferentialFunction;
    use tgraph::EdgeId;

    fn manager() -> GraphManager {
        let cfg = GraphManagerConfig::default().with_index(
            DeltaGraphConfig::new(3, 2).with_diff_fn(DifferentialFunction::Intersection),
        );
        GraphManager::build_in_memory(&toy_trace().events, cfg).unwrap()
    }

    #[test]
    fn single_and_multi_point_retrieval_through_the_facade() {
        let mut gm = manager();
        let ds = toy_trace();
        let h6 = gm
            .get_hist_graph(Timestamp(6), "+node:all+edge:all")
            .unwrap();
        assert_eq!(gm.graph(h6).to_snapshot(), ds.snapshot_at(Timestamp(6)));

        let handles = gm
            .get_hist_graphs(&[Timestamp(3), Timestamp(9)], "+node:all+edge:all")
            .unwrap();
        assert_eq!(handles.len(), 2);
        assert_eq!(
            gm.graph(handles[0]).to_snapshot(),
            ds.snapshot_at(Timestamp(3))
        );
        assert_eq!(
            gm.graph(handles[1]).to_snapshot(),
            ds.snapshot_at(Timestamp(9))
        );
        assert_eq!(gm.pool().active_overlay_count(), 3);
    }

    #[test]
    fn attr_option_strings_are_honoured() {
        let mut gm = manager();
        let h = gm.get_hist_graph(Timestamp(7), "").unwrap();
        let view = gm.graph(h);
        assert!(view.node_attr(tgraph::NodeId(1), "name").is_none());
        let h2 = gm.get_hist_graph(Timestamp(7), "+node:name").unwrap();
        assert_eq!(
            gm.graph(h2)
                .node_attr(tgraph::NodeId(1), "name")
                .and_then(|v| v.as_str()),
            Some("alicia")
        );
        assert!(gm.get_hist_graph(Timestamp(7), "bogus").is_err());
    }

    #[test]
    fn expression_and_interval_queries() {
        let mut gm = manager();
        let tex = TimeExpression::diff(6i64, 9i64);
        let h = gm.get_hist_graph_expr(&tex, "").unwrap();
        assert!(gm.graph(h).has_edge(EdgeId(100)));

        let (h, transients) = gm
            .get_hist_graph_interval(Timestamp(5), Timestamp(10), "")
            .unwrap();
        assert!(gm.graph(h).has_edge(EdgeId(101)));
        assert_eq!(transients.len(), 1);
    }

    #[test]
    fn release_and_cleanup_through_the_facade() {
        let mut gm = manager();
        let a = gm.get_hist_graph(Timestamp(3), "").unwrap();
        let b = gm.get_hist_graph(Timestamp(9), "").unwrap();
        gm.release(a);
        assert!(gm.cleanup() > 0 || gm.pool().active_overlay_count() == 1);
        assert_eq!(gm.pool().active_overlay_count(), 1);
        // remaining handle still valid
        assert!(gm.graph(b).node_count() > 0);
    }

    #[test]
    fn empty_time_expression_is_rejected() {
        let mut gm = manager();
        let empty = TimeExpression {
            times: vec![],
            expr: tgraph::BoolExpr::var(0),
        };
        let err = gm.get_hist_graph_expr(&empty, "").unwrap_err();
        assert!(matches!(err, DgError::InvalidParameter(_)), "{err}");
    }

    #[test]
    fn release_all_clears_every_historical_overlay() {
        let mut gm = manager();
        gm.get_hist_graph(Timestamp(3), "").unwrap();
        gm.get_hist_graph(Timestamp(6), "").unwrap();
        gm.get_hist_graph(Timestamp(9), "").unwrap();
        assert_eq!(gm.pool().active_overlay_count(), 3);
        assert_eq!(gm.release_all(), 3);
        assert_eq!(gm.pool().active_overlay_count(), 0);
        assert_eq!(gm.pool().pending_cleanup(), 0);
        // The current graph survives and the pool remains usable.
        assert!(gm.graph(graphpool::CURRENT_GRAPH).node_count() > 0);
        let h = gm.get_hist_graph(Timestamp(6), "").unwrap();
        assert!(gm.graph(h).node_count() > 0);
        assert_eq!(gm.release_all(), 1);
    }

    #[test]
    fn updates_flow_to_pool_and_index() {
        let mut gm = manager();
        gm.append_event(Event::add_node(20, 777)).unwrap();
        gm.append_event(Event::add_edge(21, 500, 777, 1)).unwrap();
        assert!(gm
            .graph(graphpool::CURRENT_GRAPH)
            .has_node(tgraph::NodeId(777)));
        let h = gm.get_hist_graph(Timestamp(21), "").unwrap();
        assert!(gm.graph(h).has_edge(EdgeId(500)));
    }

    #[test]
    fn rejected_appends_leave_current_views_untouched() {
        let mut gm = manager();
        gm.append_event(Event::add_node(20, 700)).unwrap();
        // Out-of-order event: must be rejected without a phantom node
        // appearing in either view of the current graph.
        let err = gm.append_event(Event::add_node(15, 701)).unwrap_err();
        assert!(err.to_string().contains("appended after"), "{err}");
        assert!(!gm.index().current_graph().has_node(tgraph::NodeId(701)));
        assert!(!gm
            .graph(graphpool::CURRENT_GRAPH)
            .has_node(tgraph::NodeId(701)));
        // Duplicate node: same guarantee, and the pool keeps matching the
        // index afterwards.
        assert!(gm.append_event(Event::add_node(21, 700)).is_err());
        assert_eq!(
            gm.graph(graphpool::CURRENT_GRAPH).to_snapshot(),
            *gm.index().current_graph()
        );
    }

    #[test]
    fn key_lookup_table() {
        let mut gm = manager();
        gm.register_key("alice", tgraph::NodeId(1));
        assert_eq!(gm.resolve_key("alice"), Some(tgraph::NodeId(1)));
        assert_eq!(gm.key_of(tgraph::NodeId(1)), Some("alice"));
        assert_eq!(gm.resolve_key("bob"), None);
    }

    #[test]
    fn dependent_overlays_produce_identical_views() {
        let ds = toy_trace();
        let base = GraphManagerConfig::default().with_index(DeltaGraphConfig::new(3, 2));
        let mut plain = GraphManager::build_in_memory(&ds.events, base.clone()).unwrap();
        let mut dependent = GraphManager::build_in_memory(
            &ds.events,
            GraphManagerConfig {
                dependent_overlays: true,
                ..base
            },
        )
        .unwrap();
        for t in [3, 6, 9, 10] {
            let hp = plain
                .get_hist_graph(Timestamp(t), "+node:all+edge:all")
                .unwrap();
            let hd = dependent
                .get_hist_graph(Timestamp(t), "+node:all+edge:all")
                .unwrap();
            assert_eq!(
                plain.graph(hp).to_snapshot(),
                dependent.graph(hd).to_snapshot(),
                "t={t}"
            );
        }
    }

    #[test]
    fn stats_and_memory_reporting() {
        let mut gm = manager();
        let stats = gm.stats();
        assert!(stats.leaves >= 2);
        let before = gm.pool_memory();
        gm.get_hist_graph(Timestamp(9), "+node:all").unwrap();
        assert!(gm.pool_memory() >= before);
        gm.materialize_root().unwrap();
        assert!(gm.materialize_descendants(1).unwrap() >= 1);
    }
}
