//! The `GraphManager`: the system facade of Figure 2.
//!
//! It owns the DeltaGraph index (history manager duties: planning and disk
//! I/O), the GraphPool (overlaying retrieved graphs and cleaning them up),
//! and the lookup table translating application-level keys to internal node
//! ids (the query-manager duty that the paper notes is application specific).

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use deltagraph::{DeltaGraph, DeltaGraphConfig, DgError, DgResult, IndexStats};
use graphpool::{GraphId, GraphPool, GraphView};
use kvstore::{DiskStore, KeyValueStore, MemStore};
use tgraph::{AttrOptions, EdgeId, Event, EventKind, NodeId, Snapshot, TimeExpression, Timestamp};

use crate::cache::{CacheEntryInfo, CacheStats, SnapshotCache};
use crate::response_cache::{ResponseCache, ResponseCacheStats, WireFormat};

/// How the append boundary enforces the §3.1 bidirectional-replay contract.
///
/// Deletion events carry only enough state to restore the bare element
/// (a `DeleteEdge` its endpoints, a `DeleteNode` nothing but the id), so a
/// delete whose target still carries attributes — or, for nodes, incident
/// edges — cannot be replayed backwards faithfully: forward and backward
/// replay diverge and snapshot answers become dependent on leaf layout.
/// Every write path ([`GraphManager::append_event`],
/// [`GraphManager::append_batch`]) runs under this policy, so the invariant
/// the generators maintain is enforced for arbitrary writers too.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ContractPolicy {
    /// Auto-normalize: the boundary injects the missing clearing events
    /// (attribute removals, incident-edge deletes) immediately before the
    /// offending delete, at the same timestamp, inside the same atomic
    /// application. The stream recorded in the index is always well formed.
    #[default]
    Normalize,
    /// Reject the append (the whole batch, for batches) with a precise
    /// [`DgError::InvalidParameter`] naming the offending element.
    Reject,
}

/// What [`GraphManager::append_batch`] applied, reported to clients so an
/// `APPEND BATCH` acknowledgement can say how many events landed and how
/// many clearing events the §3.1 contract injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Events applied to the index, including injected clearing events.
    pub applied: usize,
    /// Clearing events injected by [`ContractPolicy::Normalize`].
    pub normalized: usize,
    /// Earliest event time in the batch (the invalidation horizon).
    pub t_min: Timestamp,
    /// Latest event time in the batch.
    pub t_max: Timestamp,
}

/// Configuration of a [`GraphManager`].
#[derive(Clone, Debug, Default)]
pub struct GraphManagerConfig {
    /// DeltaGraph construction parameters.
    pub index: DeltaGraphConfig,
    /// If `true`, retrieved historical graphs are overlaid as *dependent* on
    /// the current graph whenever the number of differing elements is small
    /// relative to the graph size (the query-time decision of Section 6).
    pub dependent_overlays: bool,
    /// Capacity of the shared snapshot cache used by point retrievals routed
    /// through [`crate::PoolSession::retrieve_cached`]: an LRU of
    /// materialized snapshots keyed by `(t, AttrOptions)`, whose pool
    /// overlays are shared (reference-counted) across sessions. `0` (the
    /// default) disables caching; the paper-API methods on [`GraphManager`]
    /// itself never consult the cache.
    pub snapshot_cache_capacity: usize,
    /// Capacity of the rendered-response byte cache (entries; 0 — the
    /// default — disables it): fully framed replies for hot point queries,
    /// keyed by `(t, AttrOptions, WireFormat)` and kept consistent by the
    /// same `APPEND` invalidation rule as the snapshot cache. See
    /// [`crate::response_cache`].
    pub response_cache_capacity: usize,
    /// Byte budget of the rendered-response cache (0 — the default —
    /// leaves the byte total uncapped): on top of the entry count, the
    /// cache evicts LRU replies until the cached bytes fit this budget.
    pub response_cache_bytes: u64,
    /// How the append boundary enforces the §3.1 replay contract on
    /// deletes that still carry state (see [`ContractPolicy`]). Defaults to
    /// [`ContractPolicy::Normalize`].
    pub contract_policy: ContractPolicy,
}

impl GraphManagerConfig {
    /// Uses the given DeltaGraph configuration.
    pub fn with_index(mut self, index: DeltaGraphConfig) -> Self {
        self.index = index;
        self
    }

    /// Enables the shared snapshot cache with the given capacity (entries).
    pub fn with_snapshot_cache(mut self, capacity: usize) -> Self {
        self.snapshot_cache_capacity = capacity;
        self
    }

    /// Enables the rendered-response byte cache with the given capacity
    /// (entries).
    pub fn with_response_cache(mut self, capacity: usize) -> Self {
        self.response_cache_capacity = capacity;
        self
    }

    /// Caps the rendered-response cache at the given total reply bytes
    /// (0 = uncapped).
    pub fn with_response_cache_bytes(mut self, bytes: u64) -> Self {
        self.response_cache_bytes = bytes;
        self
    }

    /// Sets how the append boundary enforces the §3.1 replay contract.
    pub fn with_contract_policy(mut self, policy: ContractPolicy) -> Self {
        self.contract_policy = policy;
        self
    }
}

/// The top-level handle to a historical graph database.
pub struct GraphManager {
    index: DeltaGraph,
    pool: GraphPool,
    /// application key → internal node id (QueryManager lookup table)
    key_to_node: HashMap<String, NodeId>,
    node_to_key: HashMap<NodeId, String>,
    config: GraphManagerConfig,
    /// The pool handle of the current graph's last full overlay.
    current_seeded: bool,
    /// Shared snapshot cache (disabled at capacity 0); see [`crate::cache`].
    cache: SnapshotCache,
    /// Rendered-response byte cache (disabled at capacity 0); see
    /// [`crate::response_cache`].
    response_cache: ResponseCache,
    /// Bumped on every successful append; guards cache inserts against
    /// racing with invalidation (see [`GraphManager::append_epoch`]).
    append_epoch: u64,
}

impl GraphManager {
    /// Builds the database over a complete event trace, storing the index in
    /// memory.
    pub fn build_in_memory(
        events: &tgraph::EventList,
        config: GraphManagerConfig,
    ) -> DgResult<Self> {
        Self::build(events, config, Arc::new(MemStore::new()))
    }

    /// Builds the database over a complete event trace, storing the index in
    /// an on-disk key–value store rooted at `path`.
    pub fn build_on_disk(
        events: &tgraph::EventList,
        config: GraphManagerConfig,
        path: impl AsRef<Path>,
    ) -> DgResult<Self> {
        let store = DiskStore::create(path.as_ref().join("deltagraph.log"))?;
        Self::build(events, config, Arc::new(store))
    }

    /// Rebuilds the database from a sealed shard segment's contents: the
    /// seed events collapse all state before the shard's range and the real
    /// events complete it, so the result is indistinguishable from the
    /// manager that originally produced the shard (key bindings excepted —
    /// segments do not persist them).
    pub fn build_from_segment(
        segment: &kvstore::Segment,
        config: GraphManagerConfig,
        store: Arc<dyn KeyValueStore>,
    ) -> DgResult<Self> {
        let mut list = segment.seed.clone();
        list.extend_from_slice(&segment.events);
        Self::build(&tgraph::EventList::from_events(list), config, store)
    }

    /// Builds the database over a complete event trace on the given backing
    /// store.
    pub fn build(
        events: &tgraph::EventList,
        config: GraphManagerConfig,
        store: Arc<dyn KeyValueStore>,
    ) -> DgResult<Self> {
        let index = DeltaGraph::build(events, config.index.clone(), store)?;
        let mut pool = GraphPool::new();
        pool.set_current(index.current_graph());
        let cache = SnapshotCache::new(config.snapshot_cache_capacity);
        let response_cache = ResponseCache::with_byte_budget(
            config.response_cache_capacity,
            config.response_cache_bytes,
        );
        Ok(GraphManager {
            index,
            pool,
            key_to_node: HashMap::new(),
            node_to_key: HashMap::new(),
            config,
            current_seeded: true,
            cache,
            response_cache,
            append_epoch: 0,
        })
    }

    // ------------------------------------------------------------------
    // Snapshot retrieval (the paper's programmatic API, Section 3.2.1)
    // ------------------------------------------------------------------

    /// `GetHistGraph(Time t, String attr_options)`: retrieves the snapshot as
    /// of `t`, overlays it onto the GraphPool, and returns its handle.
    pub fn get_hist_graph(&mut self, t: Timestamp, attr_options: &str) -> DgResult<GraphId> {
        let opts = AttrOptions::parse(attr_options).map_err(DgError::Model)?;
        let snapshot = self.index.get_snapshot(t, &opts)?;
        Ok(self.overlay(&snapshot, t))
    }

    /// `GetHistGraphs(List<Time>, String attr_options)`: multipoint retrieval
    /// through the Steiner-tree planner; all snapshots share fetched deltas
    /// and are overlaid together.
    pub fn get_hist_graphs(
        &mut self,
        times: &[Timestamp],
        attr_options: &str,
    ) -> DgResult<Vec<GraphId>> {
        let opts = AttrOptions::parse(attr_options).map_err(DgError::Model)?;
        let snapshots = self.index.get_snapshots(times, &opts)?;
        Ok(snapshots
            .into_iter()
            .zip(times)
            .map(|(snap, &t)| self.overlay(&snap, t))
            .collect())
    }

    /// `GetHistGraph(TimeExpression, String attr_options)`: retrieves the
    /// hypothetical graph satisfying a Boolean expression over time points.
    ///
    /// An expression referencing no time points is rejected: there is no
    /// meaningful snapshot (or overlay anchor) for it.
    pub fn get_hist_graph_expr(
        &mut self,
        expr: &TimeExpression,
        attr_options: &str,
    ) -> DgResult<GraphId> {
        let opts = AttrOptions::parse(attr_options).map_err(DgError::Model)?;
        let anchor = *expr.times.last().ok_or_else(|| {
            DgError::InvalidParameter("time expression references no time points".into())
        })?;
        let snapshot = self.index.get_time_expression(expr, &opts)?;
        Ok(self.overlay(&snapshot, anchor))
    }

    /// `GetHistGraphInterval(ts, te, attr_options)`: the graph over elements
    /// added during `[ts, te)` plus the transient events of that window.
    pub fn get_hist_graph_interval(
        &mut self,
        start: Timestamp,
        end: Timestamp,
        attr_options: &str,
    ) -> DgResult<(GraphId, Vec<Event>)> {
        let opts = AttrOptions::parse(attr_options).map_err(DgError::Model)?;
        let (snapshot, transients) = self.index.get_snapshot_interval(start, end, &opts)?;
        Ok((self.overlay(&snapshot, start), transients))
    }

    fn overlay(&mut self, snapshot: &Snapshot, t: Timestamp) -> GraphId {
        if self.config.dependent_overlays && self.current_seeded {
            // Query-time decision: overlay as dependent on the current graph
            // when the difference is small relative to the snapshot size.
            let current = self.index.current_graph();
            let diff = tgraph::Delta::between(current, snapshot).change_count();
            if diff * 4 < snapshot.element_count().max(1) {
                return self
                    .pool
                    .add_historical_dependent(snapshot, t, graphpool::CURRENT_GRAPH);
            }
        }
        self.pool.add_historical(snapshot, t)
    }

    /// Overlays an already-retrieved snapshot onto the GraphPool and returns
    /// its handle. This is the overlay half of [`GraphManager::get_hist_graph`],
    /// exposed so callers that compute snapshots under a shared read lock
    /// (see [`crate::SharedGraphManager`]) can attach them to the pool
    /// without recomputing.
    pub fn overlay_snapshot(&mut self, snapshot: &Snapshot, t: Timestamp) -> GraphId {
        self.overlay(snapshot, t)
    }

    // ------------------------------------------------------------------
    // Shared snapshot cache (see `crate::cache`)
    // ------------------------------------------------------------------

    /// Cache lookup for a point retrieval. On a hit the overlay gains one
    /// reference for the calling session (which must eventually
    /// [`GraphManager::release`] it). `count` controls the hit/miss
    /// counters; the double-checked re-probe after a miss passes `false`.
    pub(crate) fn cache_acquire(
        &mut self,
        t: Timestamp,
        opts: &AttrOptions,
        count: bool,
    ) -> Option<(Arc<Snapshot>, GraphId)> {
        let (snapshot, overlay) = self.cache.lookup(t, opts, count)?;
        if !self.pool.retain(overlay) {
            // Defensive: the cache's own reference should keep the overlay
            // active, but never hand out a dead handle.
            return None;
        }
        Some((snapshot, overlay))
    }

    /// Overlays a freshly computed snapshot and, when the cache is enabled,
    /// caches it. The returned handle carries one reference for the calling
    /// session; the cache holds its own (the registration reference), so
    /// the overlay outlives the session for future sharers.
    ///
    /// `computed_at_epoch` is the [`GraphManager::append_epoch`] observed
    /// while the snapshot was computed (under the read lock). If an append
    /// has landed since, the snapshot may predate events at or before `t`,
    /// so it is overlaid for the calling session only and *not* cached —
    /// a racing insert must never resurrect an invalidated time range.
    pub(crate) fn cache_insert_overlay(
        &mut self,
        snapshot: &Arc<Snapshot>,
        t: Timestamp,
        opts: &AttrOptions,
        computed_at_epoch: u64,
    ) -> GraphId {
        if self.cache.capacity() == 0 || self.append_epoch != computed_at_epoch {
            // Plain session-owned overlay, nothing cached.
            return self.overlay(snapshot.as_ref(), t);
        }
        // Cached overlays are always self-contained (never dependent on the
        // current graph): a dependent overlay's view silently changes when
        // appends mutate its dependency, which would corrupt cache entries
        // at t < event-time — exactly the entries invalidation keeps.
        let id = self.pool.add_historical(snapshot.as_ref(), t);
        self.pool.retain(id); // the session's reference (registration = cache's)
        for displaced in self.cache.insert(t, opts.clone(), Arc::clone(snapshot), id) {
            self.pool.release(displaced);
        }
        id
    }

    /// Read-only cache probe: returns the cached snapshot for `(t, opts)`
    /// without touching overlay references. Used by queries that only need
    /// the snapshot's data (e.g. `NODE ... AT`), not a pool handle. Hits
    /// and misses both count (a failed probe forces the caller into a
    /// direct computation).
    pub(crate) fn cache_peek(&mut self, t: Timestamp, opts: &AttrOptions) -> Option<Arc<Snapshot>> {
        self.cache.peek(t, opts)
    }

    /// Number of successful appends so far. Snapshot computations record
    /// the epoch they ran under so a result that raced an append is never
    /// inserted into the cache (the insert path compares epochs and falls
    /// back to a plain session-owned overlay on mismatch). The response
    /// cache applies the same guard to rendered bytes.
    pub fn append_epoch(&self) -> u64 {
        self.append_epoch
    }

    /// Looks up the pre-framed reply for `(t, opts, format)` in the
    /// rendered-response cache, counting a hit or miss.
    pub fn response_cache_get(
        &mut self,
        t: Timestamp,
        opts: &AttrOptions,
        format: WireFormat,
    ) -> Option<Arc<[u8]>> {
        self.response_cache.get(t, opts, format)
    }

    /// Caches a freshly framed reply. `computed_at_epoch` is the
    /// [`GraphManager::append_epoch`] the underlying snapshot was acquired
    /// under: if an append has landed since, the bytes may predate events at
    /// or before `t`, so they are discarded rather than cached — a racing
    /// insert must never resurrect an invalidated time range. Returns
    /// whether the reply was cached.
    pub fn response_cache_put(
        &mut self,
        t: Timestamp,
        opts: &AttrOptions,
        format: WireFormat,
        bytes: Arc<[u8]>,
        computed_at_epoch: u64,
    ) -> bool {
        if self.response_cache.capacity() == 0 || self.append_epoch != computed_at_epoch {
            return false;
        }
        self.response_cache.insert(t, opts.clone(), format, bytes);
        true
    }

    /// The response cache's behavior counters.
    pub fn response_cache_stats(&self) -> ResponseCacheStats {
        self.response_cache.stats()
    }

    /// Number of replies currently cached.
    pub fn response_cache_len(&self) -> usize {
        self.response_cache.len()
    }

    /// Capacity of the response cache (0 = disabled).
    pub fn response_cache_capacity(&self) -> usize {
        self.response_cache.capacity()
    }

    /// Byte budget of the response cache (0 = uncapped).
    pub fn response_cache_byte_budget(&self) -> u64 {
        self.response_cache.byte_budget()
    }

    /// The snapshot cache's behavior counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of snapshots currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Capacity of the snapshot cache (0 = disabled).
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// The cached entries with live overlay reference counts, sorted by
    /// `(t, opts)` — the payload of `STATS CACHE`.
    pub fn cache_entries(&self) -> Vec<CacheEntryInfo> {
        self.cache
            .entry_list()
            .into_iter()
            .map(|(t, opts, overlay)| CacheEntryInfo {
                t,
                opts: opts.canonical_string(),
                overlay,
                refs: self.pool.refcount(overlay).unwrap_or(0),
            })
            .collect()
    }

    /// A read view of a retrieved graph.
    pub fn graph(&self, id: GraphId) -> GraphView<'_> {
        self.pool.view(id)
    }

    /// Releases a retrieved graph (cleanup happens lazily).
    pub fn release(&mut self, id: GraphId) {
        self.pool.release(id);
    }

    /// Releases every retrieved historical graph (materialized index nodes
    /// and the current graph stay), purges the snapshot cache, runs the
    /// cleaner, and returns the number of graphs released. Outstanding
    /// references are ignored — this is an administrative, pool-wide reset;
    /// per-session cleanup (the server's disconnect path and the `RELEASE
    /// ALL` verb) goes through [`crate::PoolSession`], which only drops the
    /// session's own references.
    pub fn release_all(&mut self) -> usize {
        let ids: Vec<GraphId> = self
            .pool
            .active_graphs()
            .into_iter()
            .filter(|&id| {
                id != graphpool::CURRENT_GRAPH
                    && self
                        .pool
                        .entry(id)
                        .is_some_and(|e| e.kind == graphpool::GraphKind::Historical)
            })
            .collect();
        let released = ids.len();
        self.cache.purge(); // cached overlays are force-released below
        self.response_cache.purge();
        for id in ids {
            self.pool.force_release(id);
        }
        self.pool.cleanup();
        released
    }

    /// Runs the lazy cleaner; returns the number of union elements removed.
    pub fn cleanup(&mut self) -> usize {
        self.pool.cleanup()
    }

    // ------------------------------------------------------------------
    // Updates and materialization
    // ------------------------------------------------------------------

    /// Appends a new event: the current graph, the GraphPool overlay of the
    /// current graph, and the index are all updated.
    ///
    /// The §3.1 replay contract is enforced here (see [`ContractPolicy`]):
    /// a delete whose target still carries attributes (or, for nodes,
    /// incident edges) is either expanded into clearing events plus the
    /// delete — all applied as one logical append with a single epoch bump
    /// — or rejected, per the configured policy.
    ///
    /// The index goes first — it validates the event (chronology, duplicate
    /// elements) — so a rejected event never reaches the pool and the two
    /// views of the current graph cannot diverge. Cached snapshots at or
    /// after the event's time are invalidated (they could now differ from a
    /// fresh computation); entries strictly before it stay valid.
    pub fn append_event(&mut self, event: Event) -> DgResult<()> {
        let (expanded, normalized) = self.expand_event(event)?;
        self.apply_prepared(&expanded, normalized).map(|_| ())
    }

    /// Enforces the §3.1 contract on one event against the live current
    /// graph — no snapshot clone, so the per-event append path stays cheap.
    /// A clean delete (or any non-delete) expands to itself. Returns the
    /// sequence to apply plus the number of injected clearing events.
    ///
    /// Durable writers call this (or [`GraphManager::prepare_batch`]) first
    /// so the *expanded* sequence is what reaches the WAL: recovery rebuilds
    /// indexes from raw WAL replay, which must therefore be well formed.
    pub fn expand_event(&self, event: Event) -> DgResult<(Vec<Event>, usize)> {
        let mut expanded = Vec::with_capacity(1);
        expand_contract(
            self.index.current_graph(),
            event,
            self.config.contract_policy,
            &mut expanded,
        )?;
        let normalized = expanded.len() - 1;
        Ok((expanded, normalized))
    }

    /// Applies an already-validated event sequence (from
    /// [`GraphManager::expand_event`] or [`GraphManager::prepare_batch`],
    /// computed under the same exclusive lock) as one atomic unit: one
    /// append-epoch bump, one cache invalidation from the earliest time.
    ///
    /// Mid-sequence failure cannot occur for prepared input — injected
    /// clearing events are valid by construction and batches were fully
    /// simulated — so either the first event is rejected (nothing applied,
    /// no epoch bump) or the whole sequence lands.
    pub(crate) fn apply_prepared(
        &mut self,
        expanded: &[Event],
        normalized: usize,
    ) -> DgResult<BatchOutcome> {
        let t_min = expanded.first().expect("non-empty sequence").time;
        let t_max = expanded.last().expect("non-empty sequence").time;
        for ev in expanded {
            self.index.append_event(ev.clone())?;
            self.pool.apply_event_to_current(ev);
        }
        self.append_epoch += 1;
        for overlay in self.cache.invalidate_from(t_min) {
            self.pool.release(overlay);
        }
        self.response_cache.invalidate_from(t_min);
        Ok(BatchOutcome {
            applied: expanded.len(),
            normalized,
            t_min,
            t_max,
        })
    }

    /// Appends a batch of events atomically: the whole batch is validated
    /// (chronology and §3.1 well-formedness) *as a unit* against a simulated
    /// copy of the current graph before anything is applied, so a rejected
    /// batch leaves no prefix behind. Application then bumps the append
    /// epoch once and invalidates both cache tiers once, from the batch's
    /// earliest time — readers at any `t` either see none of the batch or
    /// all of it.
    ///
    /// Stale `old` values on attribute events (computed against a pre-batch
    /// snapshot by wire-level writers) are canonicalized against the
    /// evolving batch state: the authoritative previous value is what the
    /// graph actually holds, and recording anything else would break
    /// backward replay just like an attribute-carrying delete.
    pub fn append_batch(&mut self, events: Vec<Event>) -> DgResult<BatchOutcome> {
        let (expanded, normalized) = self.prepare_batch(events)?;
        self.apply_prepared(&expanded, normalized)
    }

    /// Validates and normalizes a batch without mutating anything: returns
    /// the full event sequence to apply (clearing events injected per the
    /// §3.1 policy, stale attribute `old` values canonicalized) plus the
    /// number of injected events. Shared by [`GraphManager::append_batch`]
    /// and by durable writers that must know the final sequence before
    /// writing it ahead to the WAL.
    pub fn prepare_batch(&self, events: Vec<Event>) -> DgResult<(Vec<Event>, usize)> {
        if events.is_empty() {
            return Err(DgError::InvalidParameter(
                "an APPEND BATCH must contain at least one event".into(),
            ));
        }
        // Chronology as a unit: non-decreasing within the batch and not
        // before recorded history — checked before any simulation so the
        // error is about the batch, not about whichever event tripped the
        // index first.
        let mut last = self.index.history_range().ok().map(|(_, end)| end);
        for ev in &events {
            if let Some(bound) = last {
                if ev.time < bound {
                    return Err(DgError::InvalidParameter(format!(
                        "batch event at {} precedes {bound}; a batch must be \
                         chronologically ordered and not predate recorded history",
                        ev.time
                    )));
                }
            }
            last = Some(ev.time);
        }
        let mut sim = seed_batch_sim(self.index.current_graph(), &events);
        let mut out = Vec::with_capacity(events.len());
        let mut normalized = 0usize;
        for ev in events {
            let before = out.len();
            expand_contract(&sim, ev, self.config.contract_policy, &mut out)?;
            normalized += out.len() - before - 1;
            // Simulate the new events so later batch members (and the §3.1
            // checks guarding them) see the in-batch state; a failure here
            // (duplicate element, missing target, ...) rejects the whole
            // batch before anything real was touched.
            for new in &out[before..] {
                sim.apply_forward(new).map_err(DgError::Model)?;
            }
        }
        Ok((out, normalized))
    }

    /// Appends a batch of events atomically (see
    /// [`GraphManager::append_batch`]); an empty iterator is a no-op.
    pub fn append_events(&mut self, events: impl IntoIterator<Item = Event>) -> DgResult<()> {
        let events: Vec<Event> = events.into_iter().collect();
        if events.is_empty() {
            return Ok(());
        }
        self.append_batch(events).map(|_| ())
    }

    /// Materializes the DeltaGraph root in memory.
    pub fn materialize_root(&mut self) -> DgResult<()> {
        self.index.materialize_root().map(|_| ())
    }

    /// Materializes every node `depth` levels below the root.
    pub fn materialize_descendants(&mut self, depth: u32) -> DgResult<usize> {
        Ok(self.index.materialize_descendants(depth)?.len())
    }

    // ------------------------------------------------------------------
    // QueryManager lookup table (external key ↔ internal id)
    // ------------------------------------------------------------------

    /// Registers an application-level key (user name, paper title, ...) for a
    /// node id.
    pub fn register_key(&mut self, key: impl Into<String>, node: NodeId) {
        let key = key.into();
        self.key_to_node.insert(key.clone(), node);
        self.node_to_key.insert(node, key);
    }

    /// Resolves an application-level key to its internal node id.
    pub fn resolve_key(&self, key: &str) -> Option<NodeId> {
        self.key_to_node.get(key).copied()
    }

    /// The application-level key of an internal node id, if registered.
    pub fn key_of(&self, node: NodeId) -> Option<&str> {
        self.node_to_key.get(&node).map(String::as_str)
    }

    /// Every registered `(key, node)` binding. Used when rolling a new tail
    /// shard (see [`crate::ShardedGraphManager`]): the fresh shard inherits
    /// the table so keys resolve on every shard.
    pub fn key_bindings(&self) -> Vec<(String, NodeId)> {
        self.key_to_node
            .iter()
            .map(|(k, n)| (k.clone(), *n))
            .collect()
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The underlying DeltaGraph index.
    pub fn index(&self) -> &DeltaGraph {
        &self.index
    }

    /// Mutable access to the underlying DeltaGraph index (for benchmark
    /// harnesses that tune materialization or retrieval threads directly).
    pub fn index_mut(&mut self) -> &mut DeltaGraph {
        &mut self.index
    }

    /// The underlying GraphPool.
    pub fn pool(&self) -> &GraphPool {
        &self.pool
    }

    /// Index statistics (leaves, height, stored bytes, ...).
    pub fn stats(&self) -> IndexStats {
        self.index.stats()
    }

    /// Approximate memory held by the GraphPool, in bytes.
    pub fn pool_memory(&self) -> usize {
        self.pool.approx_memory()
    }
}

/// Expands one event into the sequence the §3.1 replay contract requires,
/// evaluated against `state` (the live current graph for single appends, the
/// evolving simulated graph for batches), and appends it to `out`.
///
/// - `SetNodeAttr`/`SetEdgeAttr`: the `old` value is canonicalized to what
///   the graph actually holds — recording a stale `old` breaks backward
///   replay exactly like an attribute-carrying delete.
/// - `DeleteEdge` whose edge still carries attributes: clearing
///   `SetEdgeAttr` events are injected before it (same timestamp), or the
///   append is rejected under [`ContractPolicy::Reject`].
/// - `DeleteNode` whose node still carries attributes or incident edges:
///   attribute clears, then per-edge attribute clears + `DeleteEdge`s (in
///   edge-id order, for determinism), are injected before it — or rejected.
///
/// A delete whose target does not exist expands to itself; the index
/// rejects it with its own precise error.
/// Builds the minimal simulation state for validating a batch: only the
/// nodes and edges the batch references — plus, for `DeleteNode` targets,
/// their incident edges — are copied out of the live graph. Validation and
/// §3.1 expansion then run the real [`Snapshot`] application logic over
/// this partial state, so a batch costs O(touched elements) to prepare
/// instead of O(graph) for a full clone, with identical accept/reject
/// behavior:
///
/// - duplicate/missing checks consult exactly the referenced elements,
///   which are seeded whenever they exist in the live graph;
/// - §3.1 expansion of a delete needs the target's attributes (seeded with
///   the element) and, for nodes, its incident edges (seeded from one edge
///   scan — `neighbors` can't be used because directed edges are only
///   recorded under their source);
/// - `AddEdge` creates missing endpoints implicitly in both the full and
///   the partial state, so unreferenced endpoints never matter.
fn seed_batch_sim(base: &Snapshot, events: &[Event]) -> Snapshot {
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut edges: Vec<EdgeId> = Vec::new();
    let mut delete_targets: Vec<NodeId> = Vec::new();
    for ev in events {
        match &ev.kind {
            EventKind::AddNode { node } => nodes.push(*node),
            EventKind::DeleteNode { node } => {
                nodes.push(*node);
                delete_targets.push(*node);
            }
            EventKind::AddEdge { edge, src, dst, .. }
            | EventKind::DeleteEdge { edge, src, dst, .. } => {
                edges.push(*edge);
                nodes.push(*src);
                nodes.push(*dst);
            }
            EventKind::SetNodeAttr { node, .. } => nodes.push(*node),
            EventKind::SetEdgeAttr { edge, .. } => edges.push(*edge),
            EventKind::TransientNode { .. } | EventKind::TransientEdge { .. } => {}
        }
    }
    nodes.sort_unstable();
    nodes.dedup();
    // Incident edges matter only where a DeleteNode's §3.1 expansion (and
    // its cascade in the simulation) will consult them; the one O(edges)
    // scan is paid only by batches that actually delete nodes.
    if !delete_targets.is_empty() {
        delete_targets.sort_unstable();
        for (e, d) in base.edges() {
            if delete_targets.binary_search(&d.src).is_ok()
                || delete_targets.binary_search(&d.dst).is_ok()
            {
                edges.push(e);
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();

    let mut sim = Snapshot::new();
    for &n in &nodes {
        if let Some(data) = base.node(n) {
            sim.add_node(n).expect("fresh node in empty sim");
            for (key, value) in &data.attrs {
                sim.set_node_attr(n, key, Some(value.clone()))
                    .expect("attr on just-seeded node");
            }
        }
    }
    for &e in &edges {
        if let Some(data) = base.edge(e) {
            sim.add_edge(e, data.src, data.dst, data.directed)
                .expect("fresh edge in partial sim");
            for (key, value) in &data.attrs {
                sim.set_edge_attr(e, key, Some(value.clone()))
                    .expect("attr on just-seeded edge");
            }
        }
    }
    sim
}

fn expand_contract(
    state: &Snapshot,
    mut event: Event,
    policy: ContractPolicy,
    out: &mut Vec<Event>,
) -> DgResult<()> {
    match &mut event.kind {
        EventKind::SetNodeAttr { node, key, old, .. } => {
            *old = state.node_attr(*node, key).cloned();
        }
        EventKind::SetEdgeAttr { edge, key, old, .. } => {
            *old = state.edge_attr(*edge, key).cloned();
        }
        EventKind::DeleteEdge { edge, .. } => {
            if let Some(data) = state.edge(*edge) {
                if !data.attrs.is_empty() {
                    if policy == ContractPolicy::Reject {
                        return Err(contract_violation(format!(
                            "DeleteEdge {} still carries {} attribute(s): {}",
                            edge,
                            data.attrs.len(),
                            keys_of(&data.attrs)
                        )));
                    }
                    let e = *edge;
                    for (key, value) in &data.attrs {
                        out.push(Event::set_edge_attr(
                            event.time,
                            e,
                            key.clone(),
                            Some(value.clone()),
                            None,
                        ));
                    }
                }
            }
        }
        EventKind::DeleteNode { node } => {
            if let Some(data) = state.node(*node) {
                let n = *node;
                let mut incident: Vec<(EdgeId, &tgraph::EdgeData)> = state
                    .edges()
                    .filter(|(_, d)| d.src == n || d.dst == n)
                    .collect();
                incident.sort_by_key(|(e, _)| *e);
                if !data.attrs.is_empty() || !incident.is_empty() {
                    if policy == ContractPolicy::Reject {
                        return Err(contract_violation(format!(
                            "DeleteNode {} still carries {} attribute(s) and {} incident edge(s)",
                            n,
                            data.attrs.len(),
                            incident.len()
                        )));
                    }
                    for (key, value) in &data.attrs {
                        out.push(Event::set_node_attr(
                            event.time,
                            n,
                            key.clone(),
                            Some(value.clone()),
                            None,
                        ));
                    }
                    for (e, d) in incident {
                        for (key, value) in &d.attrs {
                            out.push(Event::set_edge_attr(
                                event.time,
                                e,
                                key.clone(),
                                Some(value.clone()),
                                None,
                            ));
                        }
                        out.push(Event::new(
                            event.time,
                            EventKind::DeleteEdge {
                                edge: e,
                                src: d.src,
                                dst: d.dst,
                                directed: d.directed,
                            },
                        ));
                    }
                }
            }
        }
        _ => {}
    }
    out.push(event);
    Ok(())
}

fn contract_violation(detail: String) -> DgError {
    DgError::InvalidParameter(format!(
        "replay contract (§3.1) violation: {detail}; clear attributes and \
         incident edges first, or keep ContractPolicy::Normalize"
    ))
}

fn keys_of(attrs: &tgraph::AttrMap) -> String {
    attrs.keys().cloned().collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::toy_trace;
    use deltagraph::DifferentialFunction;
    use tgraph::EdgeId;

    fn manager() -> GraphManager {
        let cfg = GraphManagerConfig::default().with_index(
            DeltaGraphConfig::new(3, 2).with_diff_fn(DifferentialFunction::Intersection),
        );
        GraphManager::build_in_memory(&toy_trace().events, cfg).unwrap()
    }

    #[test]
    fn single_and_multi_point_retrieval_through_the_facade() {
        let mut gm = manager();
        let ds = toy_trace();
        let h6 = gm
            .get_hist_graph(Timestamp(6), "+node:all+edge:all")
            .unwrap();
        assert_eq!(gm.graph(h6).to_snapshot(), ds.snapshot_at(Timestamp(6)));

        let handles = gm
            .get_hist_graphs(&[Timestamp(3), Timestamp(9)], "+node:all+edge:all")
            .unwrap();
        assert_eq!(handles.len(), 2);
        assert_eq!(
            gm.graph(handles[0]).to_snapshot(),
            ds.snapshot_at(Timestamp(3))
        );
        assert_eq!(
            gm.graph(handles[1]).to_snapshot(),
            ds.snapshot_at(Timestamp(9))
        );
        assert_eq!(gm.pool().active_overlay_count(), 3);
    }

    #[test]
    fn attr_option_strings_are_honoured() {
        let mut gm = manager();
        let h = gm.get_hist_graph(Timestamp(7), "").unwrap();
        let view = gm.graph(h);
        assert!(view.node_attr(tgraph::NodeId(1), "name").is_none());
        let h2 = gm.get_hist_graph(Timestamp(7), "+node:name").unwrap();
        assert_eq!(
            gm.graph(h2)
                .node_attr(tgraph::NodeId(1), "name")
                .and_then(|v| v.as_str()),
            Some("alicia")
        );
        assert!(gm.get_hist_graph(Timestamp(7), "bogus").is_err());
    }

    #[test]
    fn expression_and_interval_queries() {
        let mut gm = manager();
        let tex = TimeExpression::diff(6i64, 9i64);
        let h = gm.get_hist_graph_expr(&tex, "").unwrap();
        assert!(gm.graph(h).has_edge(EdgeId(100)));

        let (h, transients) = gm
            .get_hist_graph_interval(Timestamp(5), Timestamp(10), "")
            .unwrap();
        assert!(gm.graph(h).has_edge(EdgeId(101)));
        assert_eq!(transients.len(), 1);
    }

    #[test]
    fn release_and_cleanup_through_the_facade() {
        let mut gm = manager();
        let a = gm.get_hist_graph(Timestamp(3), "").unwrap();
        let b = gm.get_hist_graph(Timestamp(9), "").unwrap();
        gm.release(a);
        assert!(gm.cleanup() > 0 || gm.pool().active_overlay_count() == 1);
        assert_eq!(gm.pool().active_overlay_count(), 1);
        // remaining handle still valid
        assert!(gm.graph(b).node_count() > 0);
    }

    #[test]
    fn empty_time_expression_is_rejected() {
        let mut gm = manager();
        let empty = TimeExpression {
            times: vec![],
            expr: tgraph::BoolExpr::var(0),
        };
        let err = gm.get_hist_graph_expr(&empty, "").unwrap_err();
        assert!(matches!(err, DgError::InvalidParameter(_)), "{err}");
    }

    #[test]
    fn release_all_clears_every_historical_overlay() {
        let mut gm = manager();
        gm.get_hist_graph(Timestamp(3), "").unwrap();
        gm.get_hist_graph(Timestamp(6), "").unwrap();
        gm.get_hist_graph(Timestamp(9), "").unwrap();
        assert_eq!(gm.pool().active_overlay_count(), 3);
        assert_eq!(gm.release_all(), 3);
        assert_eq!(gm.pool().active_overlay_count(), 0);
        assert_eq!(gm.pool().pending_cleanup(), 0);
        // The current graph survives and the pool remains usable.
        assert!(gm.graph(graphpool::CURRENT_GRAPH).node_count() > 0);
        let h = gm.get_hist_graph(Timestamp(6), "").unwrap();
        assert!(gm.graph(h).node_count() > 0);
        assert_eq!(gm.release_all(), 1);
    }

    #[test]
    fn updates_flow_to_pool_and_index() {
        let mut gm = manager();
        gm.append_event(Event::add_node(20, 777)).unwrap();
        gm.append_event(Event::add_edge(21, 500, 777, 1)).unwrap();
        assert!(gm
            .graph(graphpool::CURRENT_GRAPH)
            .has_node(tgraph::NodeId(777)));
        let h = gm.get_hist_graph(Timestamp(21), "").unwrap();
        assert!(gm.graph(h).has_edge(EdgeId(500)));
    }

    #[test]
    fn rejected_appends_leave_current_views_untouched() {
        let mut gm = manager();
        gm.append_event(Event::add_node(20, 700)).unwrap();
        // Out-of-order event: must be rejected without a phantom node
        // appearing in either view of the current graph.
        let err = gm.append_event(Event::add_node(15, 701)).unwrap_err();
        assert!(err.to_string().contains("appended after"), "{err}");
        assert!(!gm.index().current_graph().has_node(tgraph::NodeId(701)));
        assert!(!gm
            .graph(graphpool::CURRENT_GRAPH)
            .has_node(tgraph::NodeId(701)));
        // Duplicate node: same guarantee, and the pool keeps matching the
        // index afterwards.
        assert!(gm.append_event(Event::add_node(21, 700)).is_err());
        assert_eq!(
            gm.graph(graphpool::CURRENT_GRAPH).to_snapshot(),
            *gm.index().current_graph()
        );
    }

    #[test]
    fn key_lookup_table() {
        let mut gm = manager();
        gm.register_key("alice", tgraph::NodeId(1));
        assert_eq!(gm.resolve_key("alice"), Some(tgraph::NodeId(1)));
        assert_eq!(gm.key_of(tgraph::NodeId(1)), Some("alice"));
        assert_eq!(gm.resolve_key("bob"), None);
    }

    #[test]
    fn dependent_overlays_produce_identical_views() {
        let ds = toy_trace();
        let base = GraphManagerConfig::default().with_index(DeltaGraphConfig::new(3, 2));
        let mut plain = GraphManager::build_in_memory(&ds.events, base.clone()).unwrap();
        let mut dependent = GraphManager::build_in_memory(
            &ds.events,
            GraphManagerConfig {
                dependent_overlays: true,
                ..base
            },
        )
        .unwrap();
        for t in [3, 6, 9, 10] {
            let hp = plain
                .get_hist_graph(Timestamp(t), "+node:all+edge:all")
                .unwrap();
            let hd = dependent
                .get_hist_graph(Timestamp(t), "+node:all+edge:all")
                .unwrap();
            assert_eq!(
                plain.graph(hp).to_snapshot(),
                dependent.graph(hd).to_snapshot(),
                "t={t}"
            );
        }
    }

    /// A manager whose leaf size is large enough that appends stay in the
    /// recent eventlist — the tests below assert on the recorded stream.
    fn wide_manager() -> GraphManager {
        GraphManager::build_in_memory(&toy_trace().events, GraphManagerConfig::default()).unwrap()
    }

    #[test]
    fn attribute_carrying_deletes_are_normalized_at_the_boundary() {
        use tgraph::AttrValue;
        let mut gm = wide_manager();
        gm.append_event(Event::add_node(20, 800)).unwrap();
        gm.append_event(Event::add_edge(20, 900, 800, 1)).unwrap();
        gm.append_event(Event::set_edge_attr(
            21,
            900,
            "w",
            None,
            Some(AttrValue::Int(5)),
        ))
        .unwrap();
        let before = gm.index().recent_events().len();
        // Ill-formed: the edge still carries `w`. The boundary must inject
        // the clearing event before the delete.
        gm.append_event(Event::delete_edge(22, 900, 800, 1))
            .unwrap();
        let recorded = gm.index().recent_events().events();
        assert_eq!(recorded.len(), before + 2, "clear + delete recorded");
        assert!(matches!(
            &recorded[recorded.len() - 2].kind,
            EventKind::SetEdgeAttr {
                old: Some(AttrValue::Int(5)),
                new: None,
                ..
            }
        ));
        assert!(matches!(
            &recorded[recorded.len() - 1].kind,
            EventKind::DeleteEdge { .. }
        ));
    }

    #[test]
    fn edge_carrying_node_delete_is_normalized_at_the_boundary() {
        use tgraph::AttrValue;
        let mut gm = wide_manager();
        gm.append_event(Event::add_node(20, 800)).unwrap();
        gm.append_event(Event::add_edge(20, 900, 800, 1)).unwrap();
        gm.append_event(Event::set_node_attr(
            21,
            800,
            "name",
            None,
            Some(AttrValue::from("x")),
        ))
        .unwrap();
        let before = gm.index().recent_events().len();
        // Ill-formed: node 800 still has an attribute and an incident edge.
        gm.append_event(Event::delete_node(22, 800)).unwrap();
        let recorded = gm.index().recent_events().events();
        // attr clear + edge delete + node delete
        assert_eq!(recorded.len(), before + 3);
        assert!(!gm.index().current_graph().has_node(tgraph::NodeId(800)));
        assert!(!gm.index().current_graph().has_edge(EdgeId(900)));
        // The pool's current view stayed in lockstep through the expansion.
        assert_eq!(
            gm.graph(graphpool::CURRENT_GRAPH).to_snapshot(),
            *gm.index().current_graph()
        );
    }

    /// `prepare_batch` validates against a *partial* simulation seeded with
    /// only the elements the batch touches. This pins its output to the
    /// full-clone reference it replaced, on a batch built to stress the
    /// seeding edge cases: a delete target with an *incoming directed*
    /// edge (invisible to `neighbors`), reuse of the cascade-freed edge id
    /// inside the same batch, and a stale attribute `old` value needing
    /// canonicalization.
    #[test]
    fn partial_sim_preparation_matches_full_clone_reference() {
        use tgraph::AttrValue;
        let mut gm = wide_manager();
        gm.append_event(Event::add_node(20, 800)).unwrap();
        gm.append_event(Event::add_node(20, 801)).unwrap();
        gm.append_event(Event::new(
            21,
            EventKind::AddEdge {
                edge: EdgeId(900),
                src: NodeId(801),
                dst: NodeId(800),
                directed: true,
            },
        ))
        .unwrap();
        gm.append_event(Event::set_node_attr(
            22,
            800,
            "name",
            None,
            Some(AttrValue::from("x")),
        ))
        .unwrap();
        gm.append_event(Event::set_edge_attr(
            22,
            900,
            "w",
            None,
            Some(AttrValue::Int(3)),
        ))
        .unwrap();

        let batch = vec![
            Event::add_node(30, 810),
            // Ill-formed: attribute plus the incoming directed edge.
            Event::delete_node(30, 800),
            // Reuses the id the cascade just freed.
            Event::new(
                31,
                EventKind::AddEdge {
                    edge: EdgeId(900),
                    src: NodeId(801),
                    dst: NodeId(810),
                    directed: false,
                },
            ),
            // Stale `old`: the graph holds no previous value for this key.
            Event::set_node_attr(
                32,
                810,
                "a",
                Some(AttrValue::Int(9)),
                Some(AttrValue::Int(1)),
            ),
        ];

        // Reference: the full-clone preparation the partial sim replaced.
        let mut sim = gm.index().current_graph().clone();
        let mut want = Vec::new();
        let mut want_normalized = 0usize;
        for ev in batch.clone() {
            let before = want.len();
            expand_contract(&sim, ev, ContractPolicy::Normalize, &mut want).unwrap();
            want_normalized += want.len() - before - 1;
            for new in &want[before..] {
                sim.apply_forward(new).unwrap();
            }
        }

        let (got, got_normalized) = gm.prepare_batch(batch).unwrap();
        assert_eq!(got, want, "partial sim expanded a different sequence");
        assert_eq!(got_normalized, want_normalized);
        assert!(got_normalized >= 2, "the delete should have been expanded");

        // The prepared sequence applies cleanly and lands the whole batch.
        gm.apply_prepared(&got, got_normalized).unwrap();
        let current = gm.index().current_graph();
        assert!(!current.has_node(NodeId(800)));
        assert!(current.has_edge(EdgeId(900)));
        assert_eq!(current.edge(EdgeId(900)).unwrap().dst, NodeId(810));
    }

    #[test]
    fn reject_policy_refuses_ill_formed_deletes() {
        use tgraph::AttrValue;
        let cfg = GraphManagerConfig::default().with_contract_policy(ContractPolicy::Reject);
        let mut gm = GraphManager::build_in_memory(&toy_trace().events, cfg).unwrap();
        gm.append_event(Event::add_node(20, 800)).unwrap();
        gm.append_event(Event::add_edge(20, 900, 800, 1)).unwrap();
        gm.append_event(Event::set_edge_attr(
            21,
            900,
            "w",
            None,
            Some(AttrValue::Int(5)),
        ))
        .unwrap();
        let err = gm
            .append_event(Event::delete_edge(22, 900, 800, 1))
            .unwrap_err();
        assert!(err.to_string().contains("replay contract"), "{err}");
        assert!(err.to_string().contains('w'), "{err}");
        // Nothing was applied.
        assert!(gm.index().current_graph().has_edge(EdgeId(900)));
        let err = gm.append_event(Event::delete_node(22, 800)).unwrap_err();
        assert!(err.to_string().contains("incident edge"), "{err}");
    }

    #[test]
    fn batches_apply_atomically_with_one_epoch_bump() {
        let mut gm = manager();
        let epoch = gm.append_epoch();
        let outcome = gm
            .append_batch(vec![
                Event::add_node(20, 800),
                Event::add_node(20, 801),
                Event::add_edge(20, 900, 800, 801),
            ])
            .unwrap();
        assert_eq!(outcome.applied, 3);
        assert_eq!(outcome.normalized, 0);
        assert_eq!(
            (outcome.t_min, outcome.t_max),
            (Timestamp(20), Timestamp(20))
        );
        assert_eq!(gm.append_epoch(), epoch + 1, "one bump per batch");
        assert!(gm.index().current_graph().has_edge(EdgeId(900)));
    }

    #[test]
    fn rejected_batches_leave_no_prefix() {
        let mut gm = manager();
        let epoch = gm.append_epoch();
        let snapshot_before = gm.index().current_graph().clone();
        // Last event is invalid (duplicate node): the whole batch must be
        // rejected with the first two events never becoming visible.
        let err = gm
            .append_batch(vec![
                Event::add_node(20, 800),
                Event::add_edge(20, 900, 800, 1),
                Event::add_node(21, 800),
            ])
            .unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
        assert_eq!(gm.append_epoch(), epoch);
        assert_eq!(*gm.index().current_graph(), snapshot_before);
        // Chronology is validated as a unit, against batch-internal order.
        let err = gm
            .append_batch(vec![Event::add_node(22, 801), Event::add_node(21, 802)])
            .unwrap_err();
        assert!(err.to_string().contains("chronologically"), "{err}");
        assert_eq!(*gm.index().current_graph(), snapshot_before);
        // And the empty batch is refused outright.
        assert!(gm.append_batch(vec![]).is_err());
    }

    #[test]
    fn batch_canonicalizes_stale_old_attribute_values() {
        use tgraph::AttrValue;
        let mut gm = wide_manager();
        gm.append_batch(vec![
            Event::add_node(20, 800),
            // Both events claim old=None, as a wire client computing
            // against the pre-batch snapshot would; the second's true old
            // value is Int(1) and must be recorded as such.
            Event::set_node_attr(20, 800, "k", None, Some(AttrValue::Int(1))),
            Event::set_node_attr(21, 800, "k", None, Some(AttrValue::Int(2))),
        ])
        .unwrap();
        let recorded = gm.index().recent_events().events();
        let last = &recorded[recorded.len() - 1];
        assert!(matches!(
            &last.kind,
            EventKind::SetNodeAttr {
                old: Some(AttrValue::Int(1)),
                new: Some(AttrValue::Int(2)),
                ..
            }
        ));
    }

    #[test]
    fn batch_normalization_counts_injected_events() {
        use tgraph::AttrValue;
        let mut gm = manager();
        let outcome = gm
            .append_batch(vec![
                Event::add_node(20, 800),
                Event::add_edge(20, 900, 800, 1),
                Event::set_edge_attr(21, 900, "w", None, Some(AttrValue::Int(5))),
                // Ill-formed within the batch: the edge gained `w` above.
                Event::delete_edge(22, 900, 800, 1),
            ])
            .unwrap();
        assert_eq!(outcome.applied, 5, "four events plus one injected clear");
        assert_eq!(outcome.normalized, 1);
        assert!(!gm.index().current_graph().has_edge(EdgeId(900)));
    }

    #[test]
    fn stats_and_memory_reporting() {
        let mut gm = manager();
        let stats = gm.stats();
        assert!(stats.leaves >= 2);
        let before = gm.pool_memory();
        gm.get_hist_graph(Timestamp(9), "+node:all").unwrap();
        assert!(gm.pool_memory() >= before);
        gm.materialize_root().unwrap();
        assert!(gm.materialize_descendants(1).unwrap() >= 1);
    }
}
