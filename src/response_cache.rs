//! The rendered-response byte cache: hot points become `write()` calls.
//!
//! PR 3's snapshot cache removed index traversal from the hot path, and the
//! bench promptly showed the next bottleneck: at small scale the hot-point
//! speedup collapses because **serialization dominates** — every `GET GRAPH
//! AT t` re-renders the same `Arc<Snapshot>` into the same bytes. Both wire
//! encodings are deterministic (sorted nodes/edges/attributes), so the fully
//! framed reply for a `(t, opts, format)` is a pure function of committed
//! history. The [`ResponseCache`] exploits that: it maps
//! `(t, `[`AttrOptions`]`, `[`WireFormat`]`)` to the complete reply bytes
//! (`Arc<[u8]>`, including the text `END` sentinel or the binary length
//! prefix), populated on first render and served on every later hit with
//! zero per-request rendering.
//!
//! Consistency follows the snapshot cache's rule exactly: an `APPEND` at
//! `ta` drops every entry with `t >= ta`; inserts are guarded by the
//! manager's append epoch so bytes rendered from a pre-append snapshot can
//! never resurrect an invalidated time range. Unlike the snapshot cache,
//! entries hold no pool references — they are plain bytes — so eviction and
//! invalidation are pure bookkeeping.
//!
//! See `docs/ARCHITECTURE.md` for where this second cache tier sits in a
//! request's life (snapshot cache → response byte cache).

use std::collections::HashMap;
use std::sync::Arc;

use tgraph::codec::{write_varint, Decode, Encode, Reader};
use tgraph::{AttrOptions, TgError, Timestamp};

/// The serving layer's response encodings. Lives in the root crate (rather
/// than `histql`, which defines the encodings themselves) because the
/// [`ResponseCache`] keys on it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// Line-oriented text: `OK ...` lines terminated by `END`.
    #[default]
    Text,
    /// Length-prefixed frames of `tgraph::codec` bytes.
    Binary,
}

impl Encode for WireFormat {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            WireFormat::Text => 0,
            WireFormat::Binary => 1,
        });
    }
}

impl Decode for WireFormat {
    fn decode(r: &mut Reader<'_>) -> tgraph::Result<Self> {
        match u64::decode(r)? {
            0 => Ok(WireFormat::Text),
            1 => Ok(WireFormat::Binary),
            t => Err(TgError::Codec(format!("invalid WireFormat tag {t}"))),
        }
    }
}

/// Monotonically increasing counters describing response-cache behavior,
/// reported over the wire on the `RC` line of `STATS CACHE` (plus the
/// `bytes` gauge of currently cached reply bytes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResponseCacheStats {
    /// Point retrievals answered from pre-framed bytes.
    pub hits: u64,
    /// Point retrievals that had to render their reply.
    pub misses: u64,
    /// Replies inserted after a miss.
    pub insertions: u64,
    /// Entries dropped because an `APPEND` landed at or before their time.
    pub invalidations: u64,
    /// Entries dropped to make room (LRU order).
    pub evictions: u64,
    /// Total reply bytes currently cached (a gauge, not a counter).
    pub bytes: u64,
}

impl ResponseCacheStats {
    /// Fraction of lookups served from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl Encode for ResponseCacheStats {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.hits);
        write_varint(buf, self.misses);
        write_varint(buf, self.insertions);
        write_varint(buf, self.invalidations);
        write_varint(buf, self.evictions);
        write_varint(buf, self.bytes);
    }
}

impl Decode for ResponseCacheStats {
    fn decode(r: &mut Reader<'_>) -> tgraph::Result<Self> {
        Ok(ResponseCacheStats {
            hits: r.read_varint()?,
            misses: r.read_varint()?,
            insertions: r.read_varint()?,
            invalidations: r.read_varint()?,
            evictions: r.read_varint()?,
            bytes: r.read_varint()?,
        })
    }
}

struct RespEntry {
    bytes: Arc<[u8]>,
    last_used: u64,
}

/// An LRU cache of fully framed replies keyed by `(t, AttrOptions,
/// WireFormat)`. Capacity 0 disables it: lookups always miss without
/// touching the counters, and nothing is retained. An optional byte
/// budget (0 = unlimited) caps the total cached reply bytes on top of
/// the entry count, evicting in LRU order until back under budget.
pub struct ResponseCache {
    capacity: usize,
    byte_budget: u64,
    entries: HashMap<(Timestamp, AttrOptions, WireFormat), RespEntry>,
    tick: u64,
    stats: ResponseCacheStats,
}

impl ResponseCache {
    /// Creates a cache holding at most `capacity` replies (0 disables it)
    /// with no byte budget.
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_budget(capacity, 0)
    }

    /// Creates a cache holding at most `capacity` replies (0 disables it)
    /// totalling at most `byte_budget` reply bytes (0 = unlimited).
    pub fn with_byte_budget(capacity: usize, byte_budget: u64) -> Self {
        ResponseCache {
            capacity,
            byte_budget,
            entries: HashMap::new(),
            tick: 0,
            stats: ResponseCacheStats::default(),
        }
    }

    /// Maximum number of cached replies (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum total cached reply bytes (0 = unlimited).
    pub fn byte_budget(&self) -> u64 {
        self.byte_budget
    }

    /// Number of replies currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no replies.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The behavior counters so far.
    pub fn stats(&self) -> ResponseCacheStats {
        self.stats
    }

    /// Looks up the framed reply for `(t, opts, format)`, refreshing its LRU
    /// position and counting a hit or miss.
    pub(crate) fn get(
        &mut self,
        t: Timestamp,
        opts: &AttrOptions,
        format: WireFormat,
    ) -> Option<Arc<[u8]>> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        match self.entries.get_mut(&(t, opts.clone(), format)) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&entry.bytes))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly rendered reply, replacing any previous entry under
    /// the same key and evicting the least-recently-used entry when full.
    /// Must not be called when the cache is disabled (the manager gates on
    /// capacity and the append epoch before calling).
    pub(crate) fn insert(
        &mut self,
        t: Timestamp,
        opts: AttrOptions,
        format: WireFormat,
        bytes: Arc<[u8]>,
    ) {
        debug_assert!(self.capacity > 0, "insert into a disabled response cache");
        if let Some(old) = self.entries.remove(&(t, opts.clone(), format)) {
            self.stats.bytes -= old.bytes.len() as u64;
        } else if self.entries.len() >= self.capacity {
            if let Some(key) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                let old = self.entries.remove(&key).expect("key just found");
                self.stats.evictions += 1;
                self.stats.bytes -= old.bytes.len() as u64;
            }
        }
        self.tick += 1;
        self.stats.insertions += 1;
        self.stats.bytes += bytes.len() as u64;
        self.entries.insert(
            (t, opts, format),
            RespEntry {
                bytes,
                last_used: self.tick,
            },
        );
        self.enforce_byte_budget();
    }

    /// Evicts LRU entries until total cached bytes fit the budget. The
    /// just-inserted entry is the MRU, so it is only dropped when it alone
    /// exceeds the budget and nothing older is left to shed.
    fn enforce_byte_budget(&mut self) {
        if self.byte_budget == 0 {
            return;
        }
        while self.stats.bytes > self.byte_budget {
            let Some(key) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let old = self.entries.remove(&key).expect("key just found");
            self.stats.evictions += 1;
            self.stats.bytes -= old.bytes.len() as u64;
        }
    }

    /// Drops every entry at or after `t` (an `APPEND` at `t` may change any
    /// reply from `t` onwards; earlier history is immutable).
    pub(crate) fn invalidate_from(&mut self, t: Timestamp) {
        let doomed: Vec<(Timestamp, AttrOptions, WireFormat)> = self
            .entries
            .keys()
            .filter(|(et, _, _)| *et >= t)
            .cloned()
            .collect();
        for key in doomed {
            if let Some(entry) = self.entries.remove(&key) {
                self.stats.invalidations += 1;
                self.stats.bytes -= entry.bytes.len() as u64;
            }
        }
    }

    /// Drops every entry (administrative reset).
    pub(crate) fn purge(&mut self) {
        self.entries.clear();
        self.stats.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(s: &str) -> Arc<[u8]> {
        Arc::from(s.as_bytes())
    }

    #[test]
    fn disabled_cache_never_hits_or_counts() {
        let mut c = ResponseCache::new(0);
        assert!(c
            .get(Timestamp(1), &AttrOptions::all(), WireFormat::Text)
            .is_none());
        assert_eq!(c.stats(), ResponseCacheStats::default());
    }

    #[test]
    fn hit_returns_the_inserted_bytes_and_counts() {
        let mut c = ResponseCache::new(4);
        let o = AttrOptions::all();
        assert!(c.get(Timestamp(1), &o, WireFormat::Text).is_none());
        c.insert(
            Timestamp(1),
            o.clone(),
            WireFormat::Text,
            bytes("OK\nEND\n"),
        );
        let got = c.get(Timestamp(1), &o, WireFormat::Text).unwrap();
        assert_eq!(&*got, b"OK\nEND\n");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.bytes, 7);
    }

    #[test]
    fn text_and_binary_are_distinct_entries() {
        let mut c = ResponseCache::new(4);
        let o = AttrOptions::all();
        c.insert(Timestamp(1), o.clone(), WireFormat::Text, bytes("text"));
        c.insert(Timestamp(1), o.clone(), WireFormat::Binary, bytes("bin"));
        assert_eq!(c.len(), 2);
        assert_eq!(
            &*c.get(Timestamp(1), &o, WireFormat::Text).unwrap(),
            b"text"
        );
        assert_eq!(
            &*c.get(Timestamp(1), &o, WireFormat::Binary).unwrap(),
            b"bin"
        );
    }

    #[test]
    fn lru_eviction_prefers_stale_entries_and_tracks_bytes() {
        let mut c = ResponseCache::new(2);
        let o = AttrOptions::all();
        c.insert(Timestamp(1), o.clone(), WireFormat::Text, bytes("aa"));
        c.insert(Timestamp(2), o.clone(), WireFormat::Text, bytes("bbbb"));
        // touch t=1 so t=2 is the LRU victim
        assert!(c.get(Timestamp(1), &o, WireFormat::Text).is_some());
        c.insert(Timestamp(3), o.clone(), WireFormat::Text, bytes("cc"));
        assert!(c.get(Timestamp(2), &o, WireFormat::Text).is_none());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.bytes, 4); // "aa" + "cc"
    }

    #[test]
    fn reinserting_a_key_replaces_in_place() {
        let mut c = ResponseCache::new(2);
        let o = AttrOptions::all();
        c.insert(Timestamp(1), o.clone(), WireFormat::Text, bytes("old!"));
        c.insert(Timestamp(2), o.clone(), WireFormat::Text, bytes("x"));
        c.insert(Timestamp(1), o.clone(), WireFormat::Text, bytes("new"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.stats().bytes, 4); // "new" + "x"
        assert_eq!(&*c.get(Timestamp(1), &o, WireFormat::Text).unwrap(), b"new");
    }

    #[test]
    fn invalidation_is_a_strict_time_cut() {
        let mut c = ResponseCache::new(8);
        let o = AttrOptions::all();
        for t in [1i64, 5, 9] {
            c.insert(Timestamp(t), o.clone(), WireFormat::Text, bytes("r"));
            c.insert(Timestamp(t), o.clone(), WireFormat::Binary, bytes("b"));
        }
        c.invalidate_from(Timestamp(5));
        assert_eq!(c.len(), 2); // both formats of t=1 survive
        assert!(c.get(Timestamp(1), &o, WireFormat::Text).is_some());
        assert!(c.get(Timestamp(5), &o, WireFormat::Binary).is_none());
        assert_eq!(c.stats().invalidations, 4);
        assert_eq!(c.stats().bytes, 2);
    }

    #[test]
    fn byte_budget_evicts_lru_until_under_budget() {
        let mut c = ResponseCache::with_byte_budget(100, 8);
        assert_eq!(c.byte_budget(), 8);
        let o = AttrOptions::all();
        c.insert(Timestamp(1), o.clone(), WireFormat::Text, bytes("aaa"));
        c.insert(Timestamp(2), o.clone(), WireFormat::Text, bytes("bbb"));
        assert_eq!(c.stats().bytes, 6);
        // touch t=1 so t=2 becomes the LRU victim
        assert!(c.get(Timestamp(1), &o, WireFormat::Text).is_some());
        // +4 bytes puts the total at 10 > 8; one eviction (t=2) lands at 7
        c.insert(Timestamp(3), o.clone(), WireFormat::Text, bytes("cccc"));
        assert!(c.get(Timestamp(2), &o, WireFormat::Text).is_none());
        assert!(c.get(Timestamp(1), &o, WireFormat::Text).is_some());
        assert!(c.get(Timestamp(3), &o, WireFormat::Text).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.bytes, 7);
    }

    #[test]
    fn byte_budget_can_evict_multiple_entries_for_one_insert() {
        let mut c = ResponseCache::with_byte_budget(100, 6);
        let o = AttrOptions::all();
        c.insert(Timestamp(1), o.clone(), WireFormat::Text, bytes("aa"));
        c.insert(Timestamp(2), o.clone(), WireFormat::Text, bytes("bb"));
        // 5 new bytes only fit after both older entries go
        c.insert(Timestamp(3), o.clone(), WireFormat::Text, bytes("ccccc"));
        assert_eq!(c.len(), 1);
        assert!(c.get(Timestamp(3), &o, WireFormat::Text).is_some());
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.stats().bytes, 5);
    }

    #[test]
    fn oversized_single_entry_is_dropped_by_the_budget() {
        let mut c = ResponseCache::with_byte_budget(100, 4);
        let o = AttrOptions::all();
        c.insert(Timestamp(1), o.clone(), WireFormat::Text, bytes("toolarge"));
        assert!(c.is_empty());
        assert_eq!(c.stats().bytes, 0);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn zero_budget_means_unlimited_bytes() {
        let mut c = ResponseCache::new(100);
        assert_eq!(c.byte_budget(), 0);
        let o = AttrOptions::all();
        for t in 0..10 {
            c.insert(Timestamp(t), o.clone(), WireFormat::Text, bytes("xxxxxxxx"));
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.stats().bytes, 80);
    }

    #[test]
    fn purge_resets_bytes() {
        let mut c = ResponseCache::new(4);
        c.insert(
            Timestamp(1),
            AttrOptions::all(),
            WireFormat::Text,
            bytes("xyz"),
        );
        c.purge();
        assert!(c.is_empty());
        assert_eq!(c.stats().bytes, 0);
    }

    #[test]
    fn stats_and_format_round_trip_through_the_codec() {
        let s = ResponseCacheStats {
            hits: 5,
            misses: 2,
            insertions: 2,
            invalidations: 1,
            evictions: 0,
            bytes: 777,
        };
        let decoded = ResponseCacheStats::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(decoded, s);
        for f in [WireFormat::Text, WireFormat::Binary] {
            assert_eq!(WireFormat::from_bytes(&f.to_bytes()).unwrap(), f);
        }
        assert!(WireFormat::from_bytes(&[9]).is_err());
    }
}
