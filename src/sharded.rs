//! Time-range sharding of the serving layer: the [`ShardedGraphManager`].
//!
//! The paper's distributed design (Section 4.2, Figure 8(b)) partitions
//! DeltaGraph storage across machines; `kvstore::PartitionedStore` already
//! reproduces that below the index. This module pushes the same idea *up*
//! into query serving: instead of funnelling every session through one
//! [`SharedGraphManager`] — where `APPEND`s serialize all writers and every
//! read contends on a single `RwLock` — a router owns N shards, each a
//! complete `SharedGraphManager` over one time range of the history.
//!
//! * **Routing** — `GET GRAPH AT t` (and `NODE`, and each `HISTORY` sample)
//!   goes to the single shard owning `t`; `GET GRAPHS AT t1,t2,...` fans out
//!   across the owning shards in parallel and reassembles the replies in
//!   request order.
//! * **Appends** — always go to the *tail* shard. When the tail exceeds a
//!   configurable event budget, the router rolls a new tail shard seeded
//!   from the old tail's current graph. Historical shards are therefore
//!   immutable: their snapshot and response caches are never invalidated by
//!   ingest, so hot historical points stay cached forever.
//! * **Self-contained shards** — shard `i` over `[lower_i, upper_i)` is
//!   built from the full graph state as of `lower_i` (collapsed into
//!   synthetic *seed events* at `lower_i - 1`) plus the real events in its
//!   range, so it answers any `t` in its range identically to a single
//!   manager replaying the whole stream (property-tested in
//!   `tests/approach_equivalence.rs`).
//!
//! Queries whose time range spans shards and cannot be decomposed per point
//! (`GET GRAPH BETWEEN`, `GET GRAPH MATCHING`, `DIFF`) execute on the single
//! shard covering all referenced points and are rejected with a clear error
//! otherwise — see `docs/PROTOCOL.md`.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{
    Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::thread;
use std::time::Instant;

use deltagraph::{DgError, DgResult};
use graphpool::GraphId;
use kvstore::wal::WalSyncPolicy;
use kvstore::{KeyValueStore, MemStore, Segment, SegmentMeta};
use tgraph::codec::{Decode, Encode, Reader};
use tgraph::{AttrOptions, Event, EventKind, EventList, Snapshot, TimeExpression, Timestamp};

use crate::cache::{CacheEntryInfo, CacheStats};
use crate::durable::{DurableState, ShardPlan};
use crate::manager::{BatchOutcome, GraphManager, GraphManagerConfig};
use crate::response_cache::ResponseCacheStats;
use crate::shared::{CachedPoint, PoolSession, SharedGraphManager};

/// Configuration of a [`ShardedGraphManager`].
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Per-shard manager configuration (index parameters and the two cache
    /// tiers). Each shard owns its own caches of these capacities.
    pub manager: GraphManagerConfig,
    /// Number of shards to split the built history into when no explicit
    /// boundaries are given (equi-width over the event time range). `<= 1`
    /// builds a single shard.
    pub shards: usize,
    /// Explicit ascending shard boundaries; shard `i` owns
    /// `[boundaries[i-1], boundaries[i])` (the first shard is unbounded
    /// below, the last unbounded above). Overrides [`ShardedConfig::shards`].
    pub boundaries: Option<Vec<Timestamp>>,
    /// Tail event budget: once the tail shard holds this many real (non-seed)
    /// events, the next strictly-later append rolls a new tail shard.
    /// `0` (the default) never rolls.
    pub shard_events: usize,
    /// Milliseconds a quarantined shard fast-fails before the next touch is
    /// allowed to retry its hydration. `0` retries on every touch.
    pub quarantine_retry_ms: u64,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            manager: GraphManagerConfig::default(),
            shards: 1,
            boundaries: None,
            shard_events: 0,
            quarantine_retry_ms: 1000,
        }
    }
}

impl ShardedConfig {
    /// Uses the given per-shard manager configuration.
    pub fn with_manager(mut self, manager: GraphManagerConfig) -> Self {
        self.manager = manager;
        self
    }

    /// Splits the built history into `n` equi-width shards.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Uses explicit ascending shard boundaries.
    pub fn with_boundaries(mut self, boundaries: Vec<Timestamp>) -> Self {
        self.boundaries = Some(boundaries);
        self
    }

    /// Sets the tail event budget that triggers rolling a new shard.
    pub fn with_shard_events(mut self, budget: usize) -> Self {
        self.shard_events = budget;
        self
    }

    /// Sets how long a quarantined shard fast-fails before hydration is
    /// retried.
    pub fn with_quarantine_retry_ms(mut self, ms: u64) -> Self {
        self.quarantine_retry_ms = ms;
        self
    }
}

/// One time-range shard: a complete manager plus its routing bounds.
struct Shard {
    cell: ShardCell,
    /// Inclusive lower bound of the owned range; `None` for the first shard
    /// (unbounded below).
    lower: Option<Timestamp>,
    /// Real (non-seed) events this shard holds, counted against the roll
    /// budget.
    events: AtomicUsize,
    /// Queries routed to this shard (skew accounting; see
    /// [`ShardInfo::queries`]).
    queries: AtomicU64,
    /// Events appended to this shard through the router.
    appends: AtomicU64,
}

impl Shard {
    /// The shard's serving manager, hydrating a lazily recovered shard on
    /// first touch (see [`ShardCell::get`]).
    fn shared(&self, inner: &Inner) -> DgResult<SharedGraphManager> {
        self.cell.get(inner, &self.events)
    }
}

/// A shard's serving manager: built eagerly on every fresh-build path, or
/// deferred to first touch on the recovery path
/// ([`ShardedGraphManager::open`]) so restart-to-first-query pays for the
/// one shard the query lands on, not for the whole history. Every shard —
/// including the tail, whose seed grows with the graph and dominates an
/// eager recovery — stays cold until a query or append touches it; the
/// deferred build runs over the same checksum-verified plan an eager build
/// would have used and produces an identical manager.
struct ShardCell {
    built: OnceLock<SharedGraphManager>,
    /// `Some` while hydration is pending; taken by the first toucher and
    /// restored if its build fails, so a later touch can retry. The mutex
    /// serializes hydrators — concurrent touchers of one cold shard block
    /// here and then read the winner's manager.
    pending: Mutex<Option<PendingShard>>,
    /// Set when the last hydration attempt failed; cleared by a successful
    /// one. While set, touches within the retry window fast-fail with
    /// [`DgError::ShardQuarantined`] instead of re-running the build, so a
    /// shard with a broken plan cannot stall every query that routes to it.
    quarantined: AtomicBool,
    /// Hydration attempts that have failed, ever (monotonic — survives a
    /// later successful build, so health counters never run backwards).
    failures: AtomicU64,
    /// Process-clock milliseconds before which a quarantined shard is not
    /// re-hydrated.
    retry_at: AtomicU64,
    /// The error that caused the last failed hydration attempt.
    last_error: Mutex<String>,
}

/// Milliseconds on a process-local monotonic clock (first call = 0).
fn clock_ms() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// Deferred construction input of a lazily recovered shard.
struct PendingShard {
    index: usize,
    plan: ShardPlan,
    /// The recovered tail carries the crash-healing retry: a build failure
    /// drops the final WAL record once (see [`ShardCell::get`]).
    is_tail: bool,
}

impl ShardCell {
    fn eager(shared: SharedGraphManager) -> Self {
        ShardCell {
            built: OnceLock::from(shared),
            pending: Mutex::new(None),
            quarantined: AtomicBool::new(false),
            failures: AtomicU64::new(0),
            retry_at: AtomicU64::new(0),
            last_error: Mutex::new(String::new()),
        }
    }

    fn lazy(index: usize, plan: ShardPlan, is_tail: bool) -> Self {
        ShardCell {
            built: OnceLock::new(),
            pending: Mutex::new(Some(PendingShard {
                index,
                plan,
                is_tail,
            })),
            quarantined: AtomicBool::new(false),
            failures: AtomicU64::new(0),
            retry_at: AtomicU64::new(0),
            last_error: Mutex::new(String::new()),
        }
    }

    /// The built manager, without hydrating: `None` means the shard is
    /// still cold. Stats and cache probes use this so a metrics scrape or
    /// a speculative cache peek never forces an index build.
    fn peek(&self) -> Option<&SharedGraphManager> {
        self.built.get()
    }

    /// The built manager, hydrating on first touch. Lock order here is
    /// `pending` → `storage` → `keys` (callers already hold the router's
    /// shard read lock); [`ShardedGraphManager::register_key`] takes `keys`
    /// without `pending`, and the manager is published *inside* the `keys`
    /// critical section, so a key registered concurrently with hydration
    /// lands either via the registry replay or via the direct registration
    /// — never neither.
    fn get(&self, inner: &Inner, events: &AtomicUsize) -> DgResult<SharedGraphManager> {
        if let Some(shared) = self.built.get() {
            return Ok(shared.clone());
        }
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(shared) = self.built.get() {
            return Ok(shared.clone());
        }
        let shard_index = pending.as_ref().map(|p| p.index).unwrap_or(0);
        // Quarantine fast path: the last hydration attempt failed and the
        // retry window has not elapsed yet — fail without touching storage
        // so a broken shard costs its callers an error, not a rebuild.
        if self.quarantined.load(Ordering::Relaxed)
            && clock_ms() < self.retry_at.load(Ordering::Relaxed)
        {
            return Err(DgError::ShardQuarantined {
                shard: shard_index,
                failures: self.failures.load(Ordering::Relaxed),
                reason: self
                    .last_error
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            });
        }
        let mut p = pending
            .take()
            .expect("an unbuilt shard holds a pending plan");
        let built = match Self::build_plan(&p, inner) {
            Ok(shared) => Ok(shared),
            Err(first_err) if p.is_tail => {
                // A crash between the WAL write-ahead and the rollback of a
                // rejected apply leaves exactly one never-applied record at
                // the very end of the log. Drop it and rebuild once; any
                // deeper failure is real corruption. (Before lazy recovery
                // this retry ran inside `open`; it moves with the build.)
                match (p.plan.events.pop(), inner.storage.as_ref()) {
                    (Some(last), Some(storage)) => storage
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .drop_last_wal_record(kvstore::wal_record_len(&last))
                        .and_then(|()| {
                            // The record is gone from the log and the plan,
                            // whatever the rebuild does — keep the counter
                            // in step with both.
                            events.fetch_sub(1, Ordering::Relaxed);
                            Self::build_plan(&p, inner)
                        }),
                    _ => Err(first_err),
                }
            }
            Err(e) => Err(e),
        };
        match built {
            Ok(shared) => {
                self.quarantined.store(false, Ordering::Relaxed);
                let keys = inner.keys.lock().unwrap_or_else(PoisonError::into_inner);
                {
                    let mut gm = shared.write();
                    for (key, node) in keys.iter() {
                        gm.register_key(key.clone(), *node);
                    }
                }
                let _ = self.built.set(shared.clone());
                drop(keys);
                Ok(shared)
            }
            Err(e) => {
                // Quarantine the shard: restore the plan for a later retry,
                // remember why it failed, and fast-fail further touches
                // until the retry window elapses. Other shards are
                // untouched and keep serving.
                let failures = self.failures.fetch_add(1, Ordering::Relaxed) + 1;
                let reason = e.to_string();
                *self
                    .last_error
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = reason.clone();
                self.retry_at.store(
                    clock_ms().saturating_add(inner.config.quarantine_retry_ms),
                    Ordering::Relaxed,
                );
                self.quarantined.store(true, Ordering::Relaxed);
                *pending = Some(p);
                Err(DgError::ShardQuarantined {
                    shard: shard_index,
                    failures,
                    reason,
                })
            }
        }
    }

    fn build_plan(p: &PendingShard, inner: &Inner) -> DgResult<SharedGraphManager> {
        let segment = Segment {
            meta: SegmentMeta {
                shard_index: p.index as u64,
                lower: p.plan.lower,
            },
            seed: p.plan.seed.clone(),
            events: p.plan.events.clone(),
        };
        SharedGraphManager::from_segment(
            &segment,
            inner.config.manager.clone(),
            (inner.make_store)(p.index),
        )
    }

    /// Earliest event time this shard holds, without hydrating.
    fn start_time(&self) -> Option<Timestamp> {
        if let Some(shared) = self.built.get() {
            return shared.read().index().history_range().ok().map(|(s, _)| s);
        }
        let pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        match pending.as_ref() {
            // The index anchors its first leaf one tick before the first
            // event (the state *entering* that event), so a deferred build
            // will report exactly this start.
            Some(p) => p
                .plan
                .seed
                .first()
                .or(p.plan.events.first())
                .map(|e| e.time.prev()),
            // Hydrated between the peek and the lock.
            None => self
                .built
                .get()
                .and_then(|s| s.read().index().history_range().ok())
                .map(|(s, _)| s),
        }
    }

    /// Latest event time this shard holds, without hydrating.
    fn end_time(&self) -> Option<Timestamp> {
        if let Some(shared) = self.built.get() {
            return shared.read().index().history_range().ok().map(|(_, e)| e);
        }
        let pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        match pending.as_ref() {
            Some(p) => p.plan.events.last().or(p.plan.seed.last()).map(|e| e.time),
            // Hydrated between the peek and the lock.
            None => self
                .built
                .get()
                .and_then(|s| s.read().index().history_range().ok())
                .map(|(_, e)| e),
        }
    }
}

/// Per-shard serving statistics, the payload of `STATS SHARDS`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// Position of the shard in time order (the tail has the highest index).
    pub index: usize,
    /// Inclusive lower bound of the owned time range (`None` = unbounded).
    pub lower: Option<Timestamp>,
    /// Exclusive upper bound of the owned time range (`None` = unbounded;
    /// only the tail shard is unbounded above).
    pub upper: Option<Timestamp>,
    /// Real (non-seed) events the shard holds.
    pub events: usize,
    /// Active historical overlays in the shard's pool.
    pub overlays: usize,
    /// Entries in the shard's snapshot cache.
    pub cache_entries: usize,
    /// The shard's snapshot-cache counters.
    pub cache: CacheStats,
    /// Entries in the shard's rendered-response cache.
    pub response_entries: usize,
    /// The shard's response-cache counters.
    pub response: ResponseCacheStats,
    /// Queries the router sent to this shard: point retrievals, entity
    /// peeks, multipoint samples (one per sampled point), and interval or
    /// expression executions. Compare across shards to see skew.
    pub queries: u64,
    /// Events appended to this shard through the router (a rolled shard
    /// starts at 1: the append that triggered the roll).
    pub appends: u64,
}

impl Encode for ShardInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.index.encode(buf);
        self.lower.encode(buf);
        self.upper.encode(buf);
        self.events.encode(buf);
        self.overlays.encode(buf);
        self.cache_entries.encode(buf);
        self.cache.encode(buf);
        self.response_entries.encode(buf);
        self.response.encode(buf);
        self.queries.encode(buf);
        self.appends.encode(buf);
    }
}

impl Decode for ShardInfo {
    fn decode(r: &mut Reader<'_>) -> tgraph::Result<Self> {
        Ok(ShardInfo {
            index: usize::decode(r)?,
            lower: Option::decode(r)?,
            upper: Option::decode(r)?,
            events: usize::decode(r)?,
            overlays: usize::decode(r)?,
            cache_entries: usize::decode(r)?,
            cache: CacheStats::decode(r)?,
            response_entries: usize::decode(r)?,
            response: ResponseCacheStats::decode(r)?,
            queries: u64::decode(r)?,
            appends: u64::decode(r)?,
        })
    }
}

/// Durable-storage statistics, the payload of `STATS STORAGE`. All zeros
/// (with `durable == false`) for an in-memory deployment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StorageInfo {
    /// Whether the router persists to a data directory at all.
    pub durable: bool,
    /// The WAL sync policy in force (`"none"` when not durable).
    pub policy: String,
    /// Sealed historical-shard segment files on disk.
    pub segments: u64,
    /// Total bytes of sealed segment files.
    pub segment_bytes: u64,
    /// Current tail WAL length in bytes.
    pub wal_bytes: u64,
    /// WAL records written by this process (all tail generations).
    pub wal_appends: u64,
    /// `fsync` calls issued by this process (all tail generations).
    pub wal_fsyncs: u64,
    /// Bytes of torn WAL tail truncated at the last recovery.
    pub torn_bytes: u64,
    /// Torn-tail truncations performed at the last recovery.
    pub torn_truncations: u64,
    /// Wall-clock milliseconds the last recovery's open phase took —
    /// manifest read, segment checksum verification, and WAL replay.
    /// Deferred shard index builds (paid on first touch) are not included.
    /// `0` = fresh build, never recovered.
    pub recovery_ms: u64,
}

impl Encode for StorageInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.durable.encode(buf);
        self.policy.encode(buf);
        self.segments.encode(buf);
        self.segment_bytes.encode(buf);
        self.wal_bytes.encode(buf);
        self.wal_appends.encode(buf);
        self.wal_fsyncs.encode(buf);
        self.torn_bytes.encode(buf);
        self.torn_truncations.encode(buf);
        self.recovery_ms.encode(buf);
    }
}

impl Decode for StorageInfo {
    fn decode(r: &mut Reader<'_>) -> tgraph::Result<Self> {
        Ok(StorageInfo {
            durable: bool::decode(r)?,
            policy: String::decode(r)?,
            segments: u64::decode(r)?,
            segment_bytes: u64::decode(r)?,
            wal_bytes: u64::decode(r)?,
            wal_appends: u64::decode(r)?,
            wal_fsyncs: u64::decode(r)?,
            torn_bytes: u64::decode(r)?,
            torn_truncations: u64::decode(r)?,
            recovery_ms: u64::decode(r)?,
        })
    }
}

/// One shard's health, part of the `STATS HEALTH` payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardHealth {
    /// Position of the shard in time order (the tail has the highest index).
    pub index: usize,
    /// `"ready"` (built and serving), `"cold"` (lazily recovered, not yet
    /// touched), `"quarantined"` (hydration failed; fast-failing until the
    /// retry window elapses), or `"degraded"` (the tail whose durable
    /// storage is read-only after a fatal write failure).
    pub state: String,
    /// Hydration attempts that have failed on this shard (monotonic).
    pub failures: u64,
}

impl Encode for ShardHealth {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.index.encode(buf);
        self.state.encode(buf);
        self.failures.encode(buf);
    }
}

impl Decode for ShardHealth {
    fn decode(r: &mut Reader<'_>) -> tgraph::Result<Self> {
        Ok(ShardHealth {
            index: usize::decode(r)?,
            state: String::decode(r)?,
            failures: u64::decode(r)?,
        })
    }
}

/// Router-wide health, the payload of `STATS HEALTH`. Computed without
/// hydrating any shard, so a health probe is always cheap — even, and
/// especially, when parts of the deployment are broken.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthInfo {
    /// Per-shard state, in time order (tail last).
    pub shards: Vec<ShardHealth>,
    /// Whether the tail's durable storage is read-only after a fatal write
    /// failure (appends are refused; reads keep serving).
    pub degraded: bool,
    /// The error that degraded the tail (empty while healthy).
    pub degraded_reason: String,
    /// Shards currently quarantined.
    pub quarantined: u64,
    /// Failed hydration attempts summed over shards (monotonic).
    pub hydration_failures: u64,
    /// Transient storage-IO errors absorbed by retry so far.
    pub storage_retries: u64,
}

impl Encode for HealthInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.shards.encode(buf);
        self.degraded.encode(buf);
        self.degraded_reason.encode(buf);
        self.quarantined.encode(buf);
        self.hydration_failures.encode(buf);
        self.storage_retries.encode(buf);
    }
}

impl Decode for HealthInfo {
    fn decode(r: &mut Reader<'_>) -> tgraph::Result<Self> {
        Ok(HealthInfo {
            shards: Vec::decode(r)?,
            degraded: bool::decode(r)?,
            degraded_reason: String::decode(r)?,
            quarantined: u64::decode(r)?,
            hydration_failures: u64::decode(r)?,
            storage_retries: u64::decode(r)?,
        })
    }
}

/// Cross-shard aggregation of the two cache tiers, the payload of
/// `STATS CACHE` under sharding. Counters are summed; capacities are
/// *per shard* (every shard owns caches of the configured capacity).
#[derive(Clone, Debug)]
pub struct CacheOverview {
    /// Per-shard snapshot-cache capacity (0 = disabled).
    pub capacity: usize,
    /// Snapshot-cache counters summed across shards.
    pub stats: CacheStats,
    /// Active historical overlays summed across shards.
    pub overlays: usize,
    /// Cached snapshot entries of every shard, sorted by `(t, opts)`.
    pub entries: Vec<CacheEntryInfo>,
    /// Per-shard response-cache capacity (0 = disabled).
    pub response_capacity: usize,
    /// Per-shard response-cache byte budget (0 = uncapped).
    pub response_byte_budget: u64,
    /// Cached replies summed across shards.
    pub response_entries: usize,
    /// Response-cache counters summed across shards.
    pub response: ResponseCacheStats,
}

fn sum_cache_stats(into: &mut CacheStats, s: CacheStats) {
    into.hits += s.hits;
    into.misses += s.misses;
    into.insertions += s.insertions;
    into.invalidations += s.invalidations;
    into.evictions += s.evictions;
}

fn sum_response_stats(into: &mut ResponseCacheStats, s: ResponseCacheStats) {
    into.hits += s.hits;
    into.misses += s.misses;
    into.insertions += s.insertions;
    into.invalidations += s.invalidations;
    into.evictions += s.evictions;
    into.bytes += s.bytes;
}

/// Factory handing each shard (by index) its backing store. Rolled tail
/// shards are numbered after the built ones, so a persistent deployment
/// keeps every shard durable.
type StoreFactory = Box<dyn Fn(usize) -> Arc<dyn KeyValueStore> + Send + Sync>;

struct Inner {
    shards: RwLock<Vec<Shard>>,
    config: ShardedConfig,
    make_store: StoreFactory,
    /// Durable backing (WAL + segment files), present when the router was
    /// created by [`ShardedGraphManager::build_durable`] or
    /// [`ShardedGraphManager::open`]. Locked after the tail shard's write
    /// lock on appends and after the router's exclusive lock on rolls.
    storage: Option<Mutex<DurableState>>,
    /// Keys registered through the router, replayed onto lazily hydrated
    /// shards when they build (see [`ShardCell::get`]). Locked after the
    /// shard read lock and after a cell's `pending` lock.
    keys: Mutex<Vec<(String, tgraph::NodeId)>>,
}

/// A cloneable router over N time-range shards of one history, each a
/// [`SharedGraphManager`] with its own caches and its own `RwLock`.
#[derive(Clone)]
pub struct ShardedGraphManager {
    inner: Arc<Inner>,
}

/// Collapses a graph state into the synthetic *seed events* that recreate it
/// at time `at`: node adds, node attributes, edge adds, edge attributes, in
/// deterministic id order. Replaying them yields exactly `state`.
fn seed_events(state: &Snapshot, at: Timestamp) -> Vec<Event> {
    let mut out = Vec::new();
    let mut nodes: Vec<_> = state.nodes().collect();
    nodes.sort_by_key(|(id, _)| *id);
    for (id, data) in &nodes {
        out.push(Event::new(at, EventKind::AddNode { node: *id }));
        for (key, value) in &data.attrs {
            out.push(Event::new(
                at,
                EventKind::SetNodeAttr {
                    node: *id,
                    key: key.clone(),
                    old: None,
                    new: Some(value.clone()),
                },
            ));
        }
    }
    let mut edges: Vec<_> = state.edges().collect();
    edges.sort_by_key(|(id, _)| *id);
    for (id, data) in &edges {
        out.push(Event::new(
            at,
            EventKind::AddEdge {
                edge: *id,
                src: data.src,
                dst: data.dst,
                directed: data.directed,
            },
        ));
        for (key, value) in &data.attrs {
            out.push(Event::new(
                at,
                EventKind::SetEdgeAttr {
                    edge: *id,
                    key: key.clone(),
                    old: None,
                    new: Some(value.clone()),
                },
            ));
        }
    }
    out
}

impl ShardedGraphManager {
    /// Builds a sharded store over a complete event trace, one in-memory
    /// backing store per shard.
    pub fn build_in_memory(events: &EventList, config: ShardedConfig) -> DgResult<Self> {
        Self::build(events, config, |_shard| Arc::new(MemStore::new()))
    }

    /// Builds a sharded store over a complete event trace; `make_store`
    /// supplies one backing store per shard index. The factory is retained:
    /// every shard rolled later gets its store from it too (indexes
    /// continue past the built shards).
    pub fn build(
        events: &EventList,
        config: ShardedConfig,
        make_store: impl Fn(usize) -> Arc<dyn KeyValueStore> + Send + Sync + 'static,
    ) -> DgResult<Self> {
        let plans = Self::plan_shards(events, &config)?;
        let make_store: StoreFactory = Box::new(make_store);
        let shards = Self::build_shards(&plans, &config, &make_store)?;
        Ok(Self::assemble(shards, config, make_store, None))
    }

    /// Builds a sharded store over a complete event trace AND persists it
    /// to `dir`: every historical shard is sealed into an immutable segment
    /// file and the tail gets a seed file plus a write-ahead log
    /// (pre-loaded with the tail's events), so appends are durable under
    /// `policy` and a later [`ShardedGraphManager::open`] recovers the
    /// whole deployment. Any previous deployment in `dir` is replaced.
    pub fn build_durable(
        events: &EventList,
        config: ShardedConfig,
        dir: impl AsRef<Path>,
        policy: WalSyncPolicy,
    ) -> DgResult<Self> {
        let plans = Self::plan_shards(events, &config)?;
        let storage = DurableState::initialize(dir.as_ref(), policy, &plans)?;
        let make_store: StoreFactory = Box::new(|_| Arc::new(MemStore::new()));
        let shards = Self::build_shards(&plans, &config, &make_store)?;
        Ok(Self::assemble(shards, config, make_store, Some(storage)))
    }

    /// Recovers a durable deployment from `dir`: sealed segments rebuild
    /// the historical shards, the tail replays from its seed file plus the
    /// WAL (a torn final record is truncated away), and serving resumes
    /// where the previous process stopped — every acknowledged append made
    /// under [`WalSyncPolicy::Always`] is visible again. The shard layout
    /// comes from disk; only `config.manager` and `config.shard_events`
    /// apply.
    ///
    /// Recovery is *lazy*: `open` verifies every file (checksums, the
    /// manifest, the WAL's record framing) but builds no indexes — each
    /// shard's index is built on the first query or append that touches
    /// it, so time-to-first-answer is one shard's build, not the whole
    /// history's. A segment whose verified bytes decode but fail the index
    /// build (a writer bug, not disk corruption) therefore surfaces on
    /// first touch rather than here.
    ///
    /// Application key bindings ([`ShardedGraphManager::register_key`]) are
    /// persisted to the data directory's `keys.log` and recovered here, so
    /// `BIND` names keep resolving after a restart.
    pub fn open(
        dir: impl AsRef<Path>,
        config: ShardedConfig,
        policy: WalSyncPolicy,
    ) -> DgResult<Self> {
        let started = Instant::now();
        let (mut storage, plans, keys) = DurableState::open(dir.as_ref(), policy)?;
        let make_store: StoreFactory = Box::new(|_| Arc::new(MemStore::new()));
        // Nothing survived anywhere (a lone tail whose WAL was destroyed):
        // refuse now rather than hand out a router whose every query fails.
        let tail_plan = plans.last().ok_or_else(|| {
            DgError::InvalidParameter("the recovered manifest lists no shards".into())
        })?;
        if tail_plan.seed.is_empty() && tail_plan.events.is_empty() {
            return Err(DgError::EmptyIndex);
        }
        // No shard is built here. Each keeps its decoded, checksum-verified
        // plan and hydrates on first touch (see [`ShardCell`]) — the tail
        // on the first append or tail-range query, carrying the torn-record
        // retry with it. Restart-to-first-query therefore pays for exactly
        // one shard build, which is what makes a durable restart beat a
        // full in-memory rebuild in `BENCH_durability.json`.
        let last = plans.len() - 1;
        let shards: Vec<Shard> = plans
            .into_iter()
            .enumerate()
            .map(|(index, plan)| Shard {
                lower: plan.lower,
                events: AtomicUsize::new(plan.events.len()),
                queries: AtomicU64::new(0),
                appends: AtomicU64::new(0),
                cell: ShardCell::lazy(index, plan, index == last),
            })
            .collect();
        storage.recovery_ms = started.elapsed().as_millis().max(1) as u64;
        let keys = keys
            .into_iter()
            .map(|(k, n)| (k, tgraph::NodeId(n)))
            .collect();
        Ok(Self::assemble_with_keys(
            shards,
            config,
            make_store,
            Some(storage),
            keys,
        ))
    }

    /// Walks the trace once, cutting at each boundary into per-shard
    /// plans. A shard's event list is its seed (the running state
    /// collapsed to `lower - 1`) plus the real events in
    /// `[lower, next boundary)`; boundaries whose seed state is empty are
    /// dropped so no shard ever builds over an empty list (the index
    /// rejects those).
    fn plan_shards(events: &EventList, config: &ShardedConfig) -> DgResult<Vec<ShardPlan>> {
        if events.is_empty() {
            return Err(DgError::EmptyIndex);
        }
        let start = events.start_time().expect("non-empty");
        let boundaries = Self::resolve_boundaries(events, config, start)?;
        let evs = events.events();
        let mut plans: Vec<ShardPlan> = Vec::new();
        let mut state = Snapshot::new();
        let mut cut = 0usize;
        let mut lower: Option<Timestamp> = None;
        let mut seed: Vec<Event> = Vec::new();
        for b in boundaries {
            let upto = evs.partition_point(|e| e.time < b);
            let range = &evs[cut..upto];
            for ev in range {
                state
                    .apply_forward(ev)
                    .map_err(|e| DgError::InvalidParameter(format!("malformed trace: {e}")))?;
            }
            let next_seed = seed_events(&state, b.prev());
            if seed.is_empty() && range.is_empty() {
                // This shard would be empty; extend the current one over the
                // range instead (routing stays correct: the previous shard
                // holds every event below the next kept boundary).
                seed = next_seed;
                lower = Some(b);
                cut = upto;
                continue;
            }
            if next_seed.is_empty() && upto == evs.len() {
                // Everything after `b` would be an empty tail; fold the
                // remainder into the current shard instead.
                break;
            }
            plans.push(ShardPlan {
                lower,
                seed,
                events: range.to_vec(),
            });
            seed = next_seed;
            lower = Some(b);
            cut = upto;
        }
        plans.push(ShardPlan {
            lower,
            seed,
            events: evs[cut..].to_vec(),
        });
        // The suppression above can only *merge* candidate shards, so the
        // first shard always exists and owns everything below its
        // successor's bound.
        plans[0].lower = None;
        Ok(plans)
    }

    /// Builds one serving shard per plan, in order. Every shard — freshly
    /// planned or recovered from disk — goes through the same
    /// segment-shaped constructor, so a rebuilt deployment is
    /// construction-identical to the one that wrote it.
    fn build_shards(
        plans: &[ShardPlan],
        config: &ShardedConfig,
        make_store: &StoreFactory,
    ) -> DgResult<Vec<Shard>> {
        plans
            .iter()
            .enumerate()
            .map(|(index, plan)| {
                let segment = Segment {
                    meta: SegmentMeta {
                        shard_index: index as u64,
                        lower: plan.lower,
                    },
                    seed: plan.seed.clone(),
                    events: plan.events.clone(),
                };
                Ok(Shard {
                    cell: ShardCell::eager(SharedGraphManager::from_segment(
                        &segment,
                        config.manager.clone(),
                        make_store(index),
                    )?),
                    lower: plan.lower,
                    events: AtomicUsize::new(plan.events.len()),
                    queries: AtomicU64::new(0),
                    appends: AtomicU64::new(0),
                })
            })
            .collect()
    }

    fn assemble(
        shards: Vec<Shard>,
        config: ShardedConfig,
        make_store: StoreFactory,
        storage: Option<DurableState>,
    ) -> Self {
        Self::assemble_with_keys(shards, config, make_store, storage, Vec::new())
    }

    fn assemble_with_keys(
        shards: Vec<Shard>,
        config: ShardedConfig,
        make_store: StoreFactory,
        storage: Option<DurableState>,
        keys: Vec<(String, tgraph::NodeId)>,
    ) -> Self {
        ShardedGraphManager {
            inner: Arc::new(Inner {
                shards: RwLock::new(shards),
                config,
                make_store,
                storage: storage.map(Mutex::new),
                keys: Mutex::new(keys),
            }),
        }
    }

    fn resolve_boundaries(
        events: &EventList,
        config: &ShardedConfig,
        start: Timestamp,
    ) -> DgResult<Vec<Timestamp>> {
        let mut bounds = match &config.boundaries {
            Some(explicit) => {
                let mut b = explicit.clone();
                b.sort_unstable();
                b.dedup();
                if b.first().is_some_and(|&t| t == Timestamp(i64::MIN)) {
                    return Err(DgError::InvalidParameter(
                        "shard boundary at the minimum timestamp is not representable".into(),
                    ));
                }
                b
            }
            None => {
                let n = config.shards.max(1);
                let end = events.end_time().expect("non-empty");
                let span = i128::from(end.raw()) - i128::from(start.raw());
                (1..n)
                    .map(|i| {
                        let off = span * i as i128 / n as i128;
                        Timestamp((i128::from(start.raw()) + off) as i64)
                    })
                    .collect()
            }
        };
        // A boundary at or below the first event would make the first shard
        // empty; the range it would delimit is served by the first shard.
        bounds.retain(|&b| b > start);
        bounds.dedup();
        Ok(bounds)
    }

    /// Wraps one existing shared manager as a single-shard router (no
    /// boundaries, no rolling) — the compatibility path for callers built
    /// around [`SharedGraphManager`]. The router cannot see how many
    /// events the wrapped manager was built over, so `STATS SHARDS`
    /// counts only events appended *through* the router.
    pub fn single(shared: SharedGraphManager) -> Self {
        ShardedGraphManager {
            inner: Arc::new(Inner {
                shards: RwLock::new(vec![Shard {
                    cell: ShardCell::eager(shared),
                    lower: None,
                    events: AtomicUsize::new(0),
                    queries: AtomicU64::new(0),
                    appends: AtomicU64::new(0),
                }]),
                config: ShardedConfig::default(),
                // Unreachable while shard_events is 0 (rolling disabled).
                make_store: Box::new(|_| Arc::new(MemStore::new())),
                storage: None,
                keys: Mutex::new(Vec::new()),
            }),
        }
    }

    fn storage_guard(&self) -> Option<MutexGuard<'_, DurableState>> {
        self.inner
            .storage
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Whether the router persists appends and rolled shards to disk.
    pub fn is_durable(&self) -> bool {
        self.inner.storage.is_some()
    }

    /// Durable-storage statistics, the payload of `STATS STORAGE`. All
    /// zeros (`durable == false`, policy `"none"`) for an in-memory router.
    pub fn storage_info(&self) -> StorageInfo {
        match self.storage_guard() {
            Some(st) => StorageInfo {
                durable: true,
                policy: st.policy().to_string(),
                segments: st.segments(),
                segment_bytes: st.segment_bytes(),
                wal_bytes: st.wal_bytes(),
                wal_appends: st.wal_appends(),
                wal_fsyncs: st.wal_fsyncs(),
                torn_bytes: st.torn_bytes,
                torn_truncations: st.torn_truncations,
                recovery_ms: st.recovery_ms,
            },
            None => StorageInfo {
                policy: "none".into(),
                ..StorageInfo::default()
            },
        }
    }

    /// Forces any buffered WAL bytes to disk now (the shutdown path; a
    /// no-op for in-memory routers).
    pub fn sync_storage(&self) -> DgResult<()> {
        match self.storage_guard() {
            Some(mut st) => st.sync(),
            None => Ok(()),
        }
    }

    fn read_shards(&self) -> RwLockReadGuard<'_, Vec<Shard>> {
        self.inner
            .shards
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn write_shards(&self) -> RwLockWriteGuard<'_, Vec<Shard>> {
        self.inner
            .shards
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of shards currently serving.
    pub fn shard_count(&self) -> usize {
        self.read_shards().len()
    }

    /// Index of the shard owning time `t`: the last shard whose lower bound
    /// is at or below `t`.
    pub fn shard_index_for(&self, t: Timestamp) -> usize {
        let shards = self.read_shards();
        shard_index_in(&shards, t)
    }

    /// The shard handle at `index` (shard indexes are stable: rolls only
    /// append), hydrating a lazily recovered shard on first touch.
    pub fn shard_at(&self, index: usize) -> DgResult<SharedGraphManager> {
        self.read_shards()[index].shared(&self.inner)
    }

    /// Handles to every shard, in time order (tail last). Hydrates every
    /// lazily recovered shard still cold.
    pub fn shard_handles(&self) -> DgResult<Vec<SharedGraphManager>> {
        self.read_shards()
            .iter()
            .map(|s| s.shared(&self.inner))
            .collect()
    }

    /// The shard owning time `t`, hydrating it on first touch.
    pub fn shard_for(&self, t: Timestamp) -> DgResult<SharedGraphManager> {
        let shards = self.read_shards();
        shards[shard_index_in(&shards, t)].shared(&self.inner)
    }

    /// Whether the shard at `index` has a built manager (a lazily recovered
    /// shard stays cold until first touch).
    fn is_hydrated(&self, index: usize) -> bool {
        self.read_shards()
            .get(index)
            .is_some_and(|s| s.cell.peek().is_some())
    }

    /// The `[start, end]` range of the served history, computed without
    /// hydrating cold shards: a cold shard reports the bounds of its stored
    /// plan, a built one the bounds of its index.
    pub fn history_range(&self) -> DgResult<(Timestamp, Timestamp)> {
        let shards = self.read_shards();
        let start = shards[0].cell.start_time().ok_or(DgError::EmptyIndex)?;
        let tail = shards.last().expect("at least one shard");
        let end = tail.cell.end_time().ok_or(DgError::EmptyIndex)?;
        Ok((start, end))
    }

    /// The single shard covering every `t` in `[min, max]`, or an error when
    /// the range spans shards (interval and expression queries cannot be
    /// decomposed per point).
    pub fn covering_shard(
        &self,
        min: Timestamp,
        max: Timestamp,
    ) -> DgResult<(usize, SharedGraphManager)> {
        let shards = self.read_shards();
        let lo = shard_index_in(&shards, min);
        let hi = shard_index_in(&shards, max);
        if lo != hi {
            return Err(DgError::InvalidParameter(format!(
                "time range [{}, {}] spans shards {lo} and {hi}; interval and \
                 expression queries must fall within one shard's time range",
                min.raw(),
                max.raw()
            )));
        }
        Ok((lo, shards[lo].shared(&self.inner)?))
    }

    /// Whether the per-shard managers were configured with a snapshot cache.
    pub fn cache_enabled(&self) -> bool {
        match self.read_shards()[0].cell.peek() {
            Some(shared) => shared.cache_enabled(),
            None => self.inner.config.manager.snapshot_cache_capacity > 0,
        }
    }

    /// Whether the per-shard managers were configured with a response cache.
    pub fn response_cache_enabled(&self) -> bool {
        match self.read_shards()[0].cell.peek() {
            Some(shared) => shared.response_cache_enabled(),
            None => self.inner.config.manager.response_cache_capacity > 0,
        }
    }

    // Note: there are deliberately no router-level response-cache get/put —
    // rendered bytes must be looked up and inserted on the *same* shard the
    // snapshot was retrieved from (see `ShardedSession::retrieve_cached_routed`).
    // Re-routing a put by time could land it on a tail shard rolled *after*
    // the render, whose fresh append epoch can coincide with the old tail's
    // and defeat the staleness guard.

    /// Bumps the owning shard's query counter by `n` (skew accounting).
    /// Each routed *point* counts once, wherever it is served from; callers
    /// on probe-then-fallback paths count at exactly one of the two steps
    /// so a request is never double-counted.
    fn note_queries(&self, shard: usize, n: u64) {
        if let Some(s) = self.read_shards().get(shard) {
            s.queries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Routes a read-only snapshot-cache probe to the shard owning `t`.
    /// Counts as the shard's query for the probe-then-`snapshot_at`
    /// entity-read path (the fallback compute is not counted again).
    pub fn peek_cached(&self, t: Timestamp, opts: &AttrOptions) -> Option<Arc<Snapshot>> {
        let shard = self.shard_index_for(t);
        self.note_queries(shard, 1);
        // A cold shard has nothing cached; a probe must not hydrate it.
        self.read_shards()
            .get(shard)
            .and_then(|s| s.cell.peek().and_then(|shared| shared.peek_cached(t, opts)))
    }

    /// Computes the snapshot as of `t` on the owning shard (no overlay).
    pub fn snapshot_at(&self, t: Timestamp, opts: &AttrOptions) -> DgResult<Snapshot> {
        self.shard_for(t)?.snapshot_at(t, opts)
    }

    /// Computes several snapshots, each on its owning shard, in request
    /// order. Times within one shard go through that shard's Steiner-tree
    /// multipoint planner together; distinct shards compute in parallel.
    /// No overlays are created.
    pub fn snapshots_at(&self, times: &[Timestamp], opts: &AttrOptions) -> DgResult<Vec<Snapshot>> {
        let groups = self.group_by_shard(times);
        for (shard, points) in &groups {
            self.note_queries(*shard, points.len() as u64);
        }
        let mut slots: Vec<Option<Snapshot>> = times.iter().map(|_| None).collect();
        if groups.len() <= 1 {
            for (shard, points) in groups {
                let ts: Vec<Timestamp> = points.iter().map(|&(_, t)| t).collect();
                let snaps = self.shard_at(shard)?.snapshots_at(&ts, opts)?;
                for ((pos, _), snap) in points.into_iter().zip(snaps) {
                    slots[pos] = Some(snap);
                }
            }
        } else {
            let mut tasks: Vec<(SharedGraphManager, Vec<(usize, Timestamp)>)> = Vec::new();
            for (shard, points) in groups {
                tasks.push((self.shard_at(shard)?, points));
            }
            let results: Vec<DgResult<Vec<(usize, Snapshot)>>> = thread::scope(|scope| {
                let handles: Vec<_> = tasks
                    .iter()
                    .map(|(shared, points)| {
                        scope.spawn(move || {
                            let ts: Vec<Timestamp> = points.iter().map(|&(_, t)| t).collect();
                            let snaps = shared.snapshots_at(&ts, opts)?;
                            Ok(points
                                .iter()
                                .map(|&(pos, _)| pos)
                                .zip(snaps)
                                .collect::<Vec<_>>())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
            for result in results {
                for (pos, snap) in result? {
                    slots[pos] = Some(snap);
                }
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every requested point computed"))
            .collect())
    }

    /// Groups request positions by owning shard, preserving request order
    /// within each group.
    fn group_by_shard(&self, times: &[Timestamp]) -> Vec<(usize, Vec<(usize, Timestamp)>)> {
        let shards = self.read_shards();
        let mut groups: Vec<(usize, Vec<(usize, Timestamp)>)> = Vec::new();
        for (pos, &t) in times.iter().enumerate() {
            let shard = shard_index_in(&shards, t);
            match groups.iter_mut().find(|(s, _)| *s == shard) {
                Some((_, points)) => points.push((pos, t)),
                None => groups.push((shard, vec![(pos, t)])),
            }
        }
        groups
    }

    /// Appends one live event to the tail shard; `build` constructs the
    /// event against the tail's current graph under the same locks that
    /// apply it (attribute appends read the *old* value from it). Rolls a
    /// new tail shard first when the event budget is exceeded and the event
    /// is strictly later than everything the tail holds.
    pub fn append_with(&self, build: impl Fn(&Snapshot) -> Event) -> DgResult<Event> {
        // Fast path under the router's shared lock: rolls are excluded, and
        // concurrent appenders serialize only on the tail's own write lock.
        {
            let shards = self.read_shards();
            let tail = shards.last().expect("at least one shard");
            let shared = tail.shared(&self.inner)?; // first post-recovery append hydrates
            let mut gm = shared.write();
            let event = build(gm.index().current_graph());
            check_tail_range(tail, &event)?;
            if !self.wants_roll(tail, &gm, &event) {
                let (expanded, normalized) = gm.expand_event(event.clone())?;
                let outcome = self.apply_tail_prepared(&mut gm, &expanded, normalized)?;
                note_tail_appends(tail, outcome.applied);
                return Ok(event);
            }
        }
        // Roll path under the exclusive router lock; the decision is re-run
        // because another appender may have rolled in between.
        let mut shards = self.write_shards();
        let tail = shards.last().expect("at least one shard");
        let shared = tail.shared(&self.inner)?;
        let mut gm = shared.write();
        let event = build(gm.index().current_graph());
        check_tail_range(tail, &event)?;
        if !self.wants_roll(tail, &gm, &event) {
            let (expanded, normalized) = gm.expand_event(event.clone())?;
            let outcome = self.apply_tail_prepared(&mut gm, &expanded, normalized)?;
            note_tail_appends(tail, outcome.applied);
            return Ok(event);
        }
        // The §3.1 boundary runs before the roll so the new shard (and its
        // durable WAL) records the normalized, well-formed sequence.
        let (expanded, _normalized) = gm.expand_event(event.clone())?;
        self.roll_tail(&mut shards, gm, &expanded)?;
        Ok(event)
    }

    /// Appends a ready-made event (no old-value lookup needed).
    pub fn append_event(&self, event: Event) -> DgResult<()> {
        self.append_with(|_| event.clone()).map(|_| ())
    }

    /// Appends a group of live events to the tail shard as one atomic unit;
    /// `build` constructs the batch against the tail's current graph under
    /// the same locks that apply it. The batch is validated — chronology,
    /// tail range, §3.1 well-formedness — *as a unit* before anything is
    /// applied: a rejected batch leaves no prefix in memory or on disk. It
    /// lands entirely in one shard (at most one roll, decided on the whole
    /// batch), becomes visible under a single append-epoch bump, and
    /// invalidates the tail's caches once.
    pub fn append_batch_with(
        &self,
        build: impl Fn(&Snapshot) -> Vec<Event>,
    ) -> DgResult<BatchOutcome> {
        // Fast path under the router's shared lock, mirroring `append_with`.
        {
            let shards = self.read_shards();
            let tail = shards.last().expect("at least one shard");
            let shared = tail.shared(&self.inner)?;
            let mut gm = shared.write();
            let events = build(gm.index().current_graph());
            let first = first_of_batch(&events)?;
            for ev in &events {
                check_tail_range(tail, ev)?;
            }
            if !self.wants_roll(tail, &gm, &first) {
                let (expanded, normalized) = gm.prepare_batch(events)?;
                let outcome = self.apply_tail_prepared(&mut gm, &expanded, normalized)?;
                note_tail_appends(tail, outcome.applied);
                return Ok(outcome);
            }
        }
        // Roll path under the exclusive router lock.
        let mut shards = self.write_shards();
        let tail = shards.last().expect("at least one shard");
        let shared = tail.shared(&self.inner)?;
        let mut gm = shared.write();
        let events = build(gm.index().current_graph());
        let first = first_of_batch(&events)?;
        for ev in &events {
            check_tail_range(tail, ev)?;
        }
        if !self.wants_roll(tail, &gm, &first) {
            let (expanded, normalized) = gm.prepare_batch(events)?;
            let outcome = self.apply_tail_prepared(&mut gm, &expanded, normalized)?;
            note_tail_appends(tail, outcome.applied);
            return Ok(outcome);
        }
        // One roll for the whole batch: every event (normalization included)
        // lands in the fresh tail shard.
        let (expanded, normalized) = gm.prepare_batch(events)?;
        self.roll_tail(&mut shards, gm, &expanded)?;
        Ok(BatchOutcome {
            applied: expanded.len(),
            normalized,
            t_min: expanded.first().expect("non-empty batch").time,
            t_max: expanded.last().expect("non-empty batch").time,
        })
    }

    /// Appends a ready-made batch atomically (see
    /// [`ShardedGraphManager::append_batch_with`]).
    pub fn append_batch(&self, events: Vec<Event>) -> DgResult<BatchOutcome> {
        self.append_batch_with(|_| events.clone())
    }

    /// Rolls a new tail shard whose first contents are `expanded` (an
    /// already §3.1-normalized event sequence — one event for `APPEND`, the
    /// whole batch for `APPEND BATCH`). The boundary is the sequence's first
    /// time; building the new shard validates the events exactly like an
    /// append would (a malformed sequence fails the build and the old tail
    /// stays). The store comes from the same factory as the built shards',
    /// so a persistent deployment keeps rolled history durable too.
    fn roll_tail(
        &self,
        shards: &mut Vec<Shard>,
        gm: RwLockWriteGuard<'_, GraphManager>,
        expanded: &[Event],
    ) -> DgResult<()> {
        let boundary = expanded.first().expect("non-empty sequence").time;
        let seed = seed_events(gm.index().current_graph(), boundary.prev());
        let keys = gm.key_bindings();
        drop(gm);
        let mut list = seed.clone();
        list.extend(expanded.iter().cloned());
        let mut next = GraphManager::build(
            &EventList::from_events(list),
            self.inner.config.manager.clone(),
            (self.inner.make_store)(shards.len()),
        )?;
        for (key, node) in keys {
            next.register_key(key, node);
        }
        // Persist the roll before exposing the new shard: seal the old
        // tail into its segment, start the next WAL generation holding the
        // triggering events, and commit with the manifest swap. An error
        // here leaves both disk (old manifest wins) and memory (no new
        // shard) on the old generation, the events unacknowledged.
        if let Some(mut st) = self.storage_guard() {
            st.roll(boundary, &seed, expanded)?;
        }
        shards.push(Shard {
            cell: ShardCell::eager(SharedGraphManager::new(next)),
            lower: Some(boundary),
            // The events that triggered the roll land in the new shard.
            events: AtomicUsize::new(expanded.len()),
            queries: AtomicU64::new(0),
            appends: AtomicU64::new(expanded.len() as u64),
        });
        Ok(())
    }

    /// Applies an already-expanded event sequence to the tail manager,
    /// writing it ahead to the WAL first when the router is durable — the
    /// WAL therefore always records the normalized, well-formed stream that
    /// recovery rebuilds from. If the in-memory apply rejects the sequence,
    /// the WAL records are rolled back to the sequence's start offset so
    /// recovery never replays a refused event or a batch prefix (a crash
    /// inside this window is healed by [`ShardedGraphManager::open`]'s
    /// drop-last-record retry).
    fn apply_tail_prepared(
        &self,
        gm: &mut GraphManager,
        expanded: &[Event],
        normalized: usize,
    ) -> DgResult<BatchOutcome> {
        match self.storage_guard() {
            Some(mut st) => {
                // Single events keep the per-record write (and its
                // accounting); batches go write-ahead as one unit.
                let offset = match expanded {
                    [single] => st.append(single)?,
                    many => st.append_batch(many)?,
                };
                match gm.apply_prepared(expanded, normalized) {
                    Ok(outcome) => Ok(outcome),
                    Err(e) => {
                        st.rollback(offset)?;
                        Err(e)
                    }
                }
            }
            None => gm.apply_prepared(expanded, normalized),
        }
    }

    fn wants_roll(&self, tail: &Shard, gm: &GraphManager, event: &Event) -> bool {
        let budget = self.inner.config.shard_events;
        budget > 0
            && tail.events.load(Ordering::Relaxed) >= budget
            && gm
                .index()
                .history_range()
                .is_ok_and(|(_, end)| event.time > end)
    }

    /// Registers an application key on every shard (rolled shards inherit
    /// the tail's table). Cold shards receive the key when they hydrate,
    /// via the router's registry. On a durable router the binding is also
    /// appended to `keys.log` (best effort: a write failure — ENOSPC, a
    /// degraded tail — leaves the binding live in memory but not durable;
    /// `STATS HEALTH` exposes the degradation).
    pub fn register_key(&self, key: impl Into<String>, node: tgraph::NodeId) {
        let key = key.into();
        {
            let shards = self.read_shards();
            let mut keys = self
                .inner
                .keys
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            keys.push((key.clone(), node));
            // Holding the registry lock while registering on built shards
            // pairs with ShardCell::get publishing inside the same critical
            // section: a shard hydrating right now either shows up as built
            // here or replays the registry entry we just pushed.
            for shard in shards.iter() {
                if let Some(shared) = shard.cell.peek() {
                    shared.write().register_key(key.clone(), node);
                }
            }
        }
        // Persist after every lock above is released (storage is ordered
        // before `keys`, never after it).
        if let Some(mut st) = self.storage_guard() {
            st.record_key(&key, node.0).ok();
        }
    }

    /// Resolves an application key (the table is identical on every shard).
    pub fn resolve_key(&self, key: &str) -> Option<tgraph::NodeId> {
        let shards = self.read_shards();
        {
            let keys = self
                .inner
                .keys
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            // Latest registration wins, matching the managers' table.
            if let Some(&(_, node)) = keys.iter().rev().find(|(k, _)| k == key) {
                return Some(node);
            }
        }
        // Keys registered on a wrapped manager before `single()` took it
        // are only in the manager's own table.
        shards[0]
            .cell
            .peek()
            .and_then(|shared| shared.read().resolve_key(key))
    }

    /// Per-shard serving statistics, in time order (tail last). Never
    /// hydrates: a cold (lazily recovered, untouched) shard reports its
    /// event count from the stored plan and zeroed serving counters, so a
    /// metrics scrape stays cheap right after recovery.
    pub fn shard_infos(&self) -> Vec<ShardInfo> {
        let shards = self.read_shards();
        shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (overlays, cache_entries, cache, response_entries, response) =
                    match s.cell.peek() {
                        Some(shared) => {
                            let gm = shared.read();
                            (
                                gm.pool().active_overlay_count(),
                                gm.cache_len(),
                                gm.cache_stats(),
                                gm.response_cache_len(),
                                gm.response_cache_stats(),
                            )
                        }
                        None => (
                            0,
                            0,
                            CacheStats::default(),
                            0,
                            ResponseCacheStats::default(),
                        ),
                    };
                ShardInfo {
                    index: i,
                    lower: s.lower,
                    upper: shards.get(i + 1).and_then(|n| n.lower),
                    events: s.events.load(Ordering::Relaxed),
                    overlays,
                    cache_entries,
                    cache,
                    response_entries,
                    response,
                    queries: s.queries.load(Ordering::Relaxed),
                    appends: s.appends.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Router-wide health (the `STATS HEALTH` payload). Never hydrates: a
    /// health probe must stay cheap precisely when the deployment is in
    /// trouble. Per-shard state is `"quarantined"` when the last hydration
    /// attempt failed, `"degraded"` for a tail whose durable storage went
    /// read-only, `"ready"` when built, `"cold"` otherwise.
    pub fn health_info(&self) -> HealthInfo {
        let shards = self.read_shards();
        let (degraded, degraded_reason, storage_retries) = match self.storage_guard() {
            Some(st) => (
                st.is_degraded(),
                st.degraded_reason().unwrap_or_default().to_string(),
                st.retries(),
            ),
            None => (false, String::new(), 0),
        };
        let tail = shards.len() - 1;
        let mut info = HealthInfo {
            degraded,
            degraded_reason,
            storage_retries,
            ..HealthInfo::default()
        };
        for (i, s) in shards.iter().enumerate() {
            let quarantined = s.cell.quarantined.load(Ordering::Relaxed);
            let failures = s.cell.failures.load(Ordering::Relaxed);
            let state = if quarantined {
                info.quarantined += 1;
                "quarantined"
            } else if degraded && i == tail {
                "degraded"
            } else if s.cell.peek().is_some() {
                "ready"
            } else {
                "cold"
            };
            info.hydration_failures += failures;
            info.shards.push(ShardHealth {
                index: i,
                state: state.to_string(),
                failures,
            });
        }
        info
    }

    /// Cross-shard aggregation of both cache tiers (the `STATS CACHE`
    /// payload): counters summed, entry lists concatenated and sorted by
    /// `(t, opts)`; capacities are per shard.
    pub fn cache_overview(&self) -> CacheOverview {
        let shards = self.read_shards();
        // Capacities from the built first shard when there is one (the
        // `single()` wrapper may carry a config the router never saw),
        // otherwise from the router config the cold shards will build with.
        let mut overview = match shards[0].cell.peek() {
            Some(shared) => {
                let gm = shared.read();
                CacheOverview {
                    capacity: gm.cache_capacity(),
                    stats: CacheStats::default(),
                    overlays: 0,
                    entries: Vec::new(),
                    response_capacity: gm.response_cache_capacity(),
                    response_byte_budget: gm.response_cache_byte_budget(),
                    response_entries: 0,
                    response: ResponseCacheStats::default(),
                }
            }
            None => CacheOverview {
                capacity: self.inner.config.manager.snapshot_cache_capacity,
                stats: CacheStats::default(),
                overlays: 0,
                entries: Vec::new(),
                response_capacity: self.inner.config.manager.response_cache_capacity,
                response_byte_budget: self.inner.config.manager.response_cache_bytes,
                response_entries: 0,
                response: ResponseCacheStats::default(),
            },
        };
        for shard in shards.iter() {
            // A cold shard has empty caches and no overlays: contributes
            // nothing, costs nothing.
            let Some(shared) = shard.cell.peek() else {
                continue;
            };
            let gm = shared.read();
            sum_cache_stats(&mut overview.stats, gm.cache_stats());
            sum_response_stats(&mut overview.response, gm.response_cache_stats());
            overview.overlays += gm.pool().active_overlay_count();
            overview.response_entries += gm.response_cache_len();
            overview.entries.extend(gm.cache_entries());
        }
        overview.entries.sort_by(|a, b| {
            a.t.cmp(&b.t)
                .then_with(|| a.opts.cmp(&b.opts))
                .then_with(|| a.overlay.cmp(&b.overlay))
        });
        overview
    }

    /// Starts a session whose per-shard overlays are released when it drops.
    pub fn session(&self) -> ShardedSession {
        ShardedSession {
            router: self.clone(),
            sessions: HashMap::new(),
        }
    }
}

fn shard_index_in(shards: &[Shard], t: Timestamp) -> usize {
    // The first shard is unbounded below; later shards own [lower, next).
    shards
        .iter()
        .rposition(|s| s.lower.is_none_or(|lower| lower <= t))
        .unwrap_or(0)
}

fn check_tail_range(tail: &Shard, event: &Event) -> DgResult<()> {
    if let Some(lower) = tail.lower {
        if event.time < lower {
            return Err(DgError::InvalidParameter(format!(
                "event at t={} predates the tail shard's lower bound {} — \
                 historical shards are immutable",
                event.time.raw(),
                lower.raw()
            )));
        }
    }
    Ok(())
}

/// The first event of a batch, which anchors the roll decision; rejects the
/// empty batch with the same error the manager boundary would.
fn first_of_batch(events: &[Event]) -> DgResult<Event> {
    events.first().cloned().ok_or_else(|| {
        DgError::InvalidParameter("an APPEND BATCH must contain at least one event".into())
    })
}

/// Records `applied` events (normalization included) against the tail's
/// roll budget and its `appends` skew counter — the counters deliberately
/// track events applied, not requests served; the request-level view lives
/// in the per-verb histograms.
fn note_tail_appends(tail: &Shard, applied: usize) {
    tail.events.fetch_add(applied, Ordering::Relaxed);
    tail.appends.fetch_add(applied as u64, Ordering::Relaxed);
}

/// A session over the router: one lazily created [`PoolSession`] per shard
/// the session touches. Dropping it releases every overlay on every shard.
pub struct ShardedSession {
    router: ShardedGraphManager,
    sessions: HashMap<usize, PoolSession>,
}

/// The per-shard half of a multipoint query: probe the shard's snapshot
/// cache per point (hot points share the cached overlay), then compute the
/// remaining cold points together through the shard's Steiner planner into
/// private overlays — deliberately without inserting, so a wide cold scan
/// cannot evict the hot set.
fn shard_multipoint(
    session: &mut PoolSession,
    points: &[(usize, Timestamp)],
    opts: &AttrOptions,
) -> DgResult<Vec<(usize, Arc<Snapshot>)>> {
    let mut out: Vec<(usize, Option<Arc<Snapshot>>)> = points
        .iter()
        .map(|&(pos, t)| (pos, session.acquire_cached(t, opts)))
        .collect();
    let missing: Vec<Timestamp> = out
        .iter()
        .zip(points)
        .filter(|((_, snap), _)| snap.is_none())
        .map(|(_, &(_, t))| t)
        .collect();
    if !missing.is_empty() {
        let snaps = session.shared().snapshots_at(&missing, opts)?;
        let mut computed = snaps.into_iter();
        for ((_, slot), &(_, t)) in out
            .iter_mut()
            .zip(points)
            .filter(|((_, snap), _)| snap.is_none())
        {
            let snapshot = Arc::new(computed.next().expect("one snapshot per miss"));
            session.overlay(&snapshot, t);
            *slot = Some(snapshot);
        }
    }
    Ok(out
        .into_iter()
        .map(|(pos, snap)| (pos, snap.expect("every slot filled")))
        .collect())
}

impl ShardedSession {
    /// The router this session runs against.
    pub fn router(&self) -> &ShardedGraphManager {
        &self.router
    }

    fn session_for(&mut self, shard: usize) -> DgResult<&mut PoolSession> {
        if !self.sessions.contains_key(&shard) {
            let session = self.router.shard_at(shard)?.session();
            self.sessions.insert(shard, session);
        }
        Ok(self.sessions.get_mut(&shard).expect("just inserted"))
    }

    /// Point retrieval through the owning shard's snapshot cache (see
    /// [`PoolSession::retrieve_cached`]).
    pub fn retrieve_cached(&mut self, t: Timestamp, opts: &AttrOptions) -> DgResult<CachedPoint> {
        self.retrieve_cached_routed(t, opts).map(|(_, point)| point)
    }

    /// Like [`ShardedSession::retrieve_cached`], but also returns a handle
    /// to the shard that served the point. Anything derived from the
    /// snapshot — in particular rendered response bytes guarded by
    /// [`CachedPoint::epoch`] — must be cached through *this* handle: the
    /// epoch is only meaningful on the shard that produced it, and
    /// re-routing by time could reach a tail shard rolled after the
    /// retrieval, whose fresh epoch can coincide with the old tail's.
    pub fn retrieve_cached_routed(
        &mut self,
        t: Timestamp,
        opts: &AttrOptions,
    ) -> DgResult<(SharedGraphManager, CachedPoint)> {
        let shard = self.router.shard_index_for(t);
        self.router.note_queries(shard, 1);
        let session = self.session_for(shard)?;
        let point = session.retrieve_cached(t, opts)?;
        Ok((session.shared().clone(), point))
    }

    /// Probe-only point acquisition on the owning shard's snapshot cache: a
    /// hit bumps the cached overlay's refcount into this session — the same
    /// bookkeeping as a [`ShardedSession::retrieve_cached`] hit — but a miss
    /// computes nothing and acquires nothing. Single-flight followers use
    /// this to take their overlay reference before accepting a leader's
    /// shared bytes; a `None` sends them down the full retrieval path.
    pub fn acquire_cached_routed(
        &mut self,
        t: Timestamp,
        opts: &AttrOptions,
    ) -> Option<Arc<Snapshot>> {
        let shard = self.router.shard_index_for(t);
        // A probe on a cold shard is a guaranteed miss and must compute
        // nothing — including the shard's own deferred index build.
        if !self.sessions.contains_key(&shard) && !self.router.is_hydrated(shard) {
            return None;
        }
        let hit = self.session_for(shard).ok()?.acquire_cached(t, opts);
        if hit.is_some() {
            // A miss computes nothing here; the full retrieval the caller
            // falls back to does its own query accounting.
            self.router.note_queries(shard, 1);
        }
        hit
    }

    /// [`ShardedSession::acquire_cached_routed`] plus the context needed to
    /// cache bytes rendered from the hit: the owning shard handle and its
    /// append epoch, read *before* the acquire — so a response-cache insert
    /// guarded by this epoch is declined if an `APPEND` races the render,
    /// exactly like a full retrieval's epoch guard. The event-driven
    /// server's reactor fast path is built on this.
    pub fn acquire_cached_point_routed(
        &mut self,
        t: Timestamp,
        opts: &AttrOptions,
    ) -> Option<(SharedGraphManager, u64, Arc<Snapshot>)> {
        let shard = self.router.shard_index_for(t);
        // A probe on a cold shard is a guaranteed miss and must compute
        // nothing — including the shard's own deferred index build.
        if !self.sessions.contains_key(&shard) && !self.router.is_hydrated(shard) {
            return None;
        }
        // A miss acquires nothing and must leave every counter untouched
        // (the reactor fast path's contract), so the query is counted only
        // on the hit.
        let (shared, epoch, snapshot) = {
            let session = self.session_for(shard).ok()?;
            let epoch = session.shared().read().append_epoch();
            let snapshot = session.acquire_cached(t, opts)?;
            (session.shared().clone(), epoch, snapshot)
        };
        self.router.note_queries(shard, 1);
        Some((shared, epoch, snapshot))
    }

    /// Multipoint retrieval: times are grouped by owning shard; each group
    /// runs the hybrid cached/Steiner path on its shard, distinct shards in
    /// parallel, and the snapshots are reassembled in **request order**
    /// regardless of shard completion order.
    pub fn get_graphs_at(
        &mut self,
        times: &[Timestamp],
        opts: &AttrOptions,
    ) -> DgResult<Vec<Arc<Snapshot>>> {
        let groups = self.router.group_by_shard(times);
        for (shard, points) in &groups {
            self.router.note_queries(*shard, points.len() as u64);
        }
        let mut slots: Vec<Option<Arc<Snapshot>>> = times.iter().map(|_| None).collect();
        if groups.len() <= 1 {
            for (shard, points) in groups {
                for (pos, snap) in shard_multipoint(self.session_for(shard)?, &points, opts)? {
                    slots[pos] = Some(snap);
                }
            }
        } else {
            // Fan out: move each shard's PoolSession into a scoped worker,
            // then put them back — overlays acquired by a shard that
            // succeeded are retained (and released with the session) even
            // if another shard failed.
            type ShardTask = (usize, PoolSession, Vec<(usize, Timestamp)>);
            let mut tasks: Vec<ShardTask> = Vec::new();
            for (shard, points) in groups {
                self.session_for(shard)?; // ensure it exists
                let session = self.sessions.remove(&shard).expect("just created");
                tasks.push((shard, session, points));
            }
            type ShardResult = DgResult<Vec<(usize, Arc<Snapshot>)>>;
            let results: Vec<ShardResult> = thread::scope(|scope| {
                let handles: Vec<_> = tasks
                    .iter_mut()
                    .map(|(_, session, points)| {
                        let points = &*points;
                        scope.spawn(move || shard_multipoint(session, points, opts))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
            for (shard, session, _) in tasks {
                self.sessions.insert(shard, session);
            }
            let mut first_err = None;
            for result in results {
                match result {
                    Ok(items) => {
                        for (pos, snap) in items {
                            slots[pos] = Some(snap);
                        }
                    }
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every requested point resolved"))
            .collect())
    }

    /// Interval retrieval on the single shard covering `[start, end)`; the
    /// graph is overlaid into that shard's pool under this session.
    pub fn interval(
        &mut self,
        start: Timestamp,
        end: Timestamp,
        opts: &AttrOptions,
    ) -> DgResult<(Snapshot, Vec<Event>)> {
        let max = if end > start { end.prev() } else { start };
        let (shard, shared) = self.router.covering_shard(start.min(max), start.max(max))?;
        self.router.note_queries(shard, 1);
        let (graph, transients) = shared.snapshot_interval(start, end, opts)?;
        self.session_for(shard)?.overlay(&graph, start);
        Ok((graph, transients))
    }

    /// Boolean time-expression retrieval on the single shard covering every
    /// referenced point; the hypothetical graph is overlaid at the anchor.
    pub fn expr(
        &mut self,
        tex: &TimeExpression,
        anchor: Timestamp,
        opts: &AttrOptions,
    ) -> DgResult<Snapshot> {
        let min = tex.times.iter().copied().min().unwrap_or(anchor);
        let max = tex.times.iter().copied().max().unwrap_or(anchor);
        let (shard, shared) = self.router.covering_shard(min, max)?;
        self.router.note_queries(shard, 1);
        let graph = shared.snapshot_expr(tex, opts)?;
        self.session_for(shard)?.overlay(&graph, anchor);
        Ok(graph)
    }

    /// Pool handles this session holds, across every shard in shard order.
    pub fn handles(&self) -> Vec<GraphId> {
        let mut shards: Vec<_> = self.sessions.iter().collect();
        shards.sort_by_key(|(idx, _)| **idx);
        shards
            .into_iter()
            .flat_map(|(_, s)| s.handles().iter().copied())
            .collect()
    }

    /// Releases every handle on every shard; returns how many were released.
    pub fn release_now(&mut self) -> usize {
        self.sessions
            .values_mut()
            .map(PoolSession::release_now)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{churn_trace, toy_trace, ChurnConfig};

    /// 60 nodes appearing at t = 1..=60, so shard contents are predictable.
    fn linear_trace() -> EventList {
        EventList::from_events(
            (1..=60)
                .map(|i| Event::add_node(i, 1000 + i as u64))
                .collect(),
        )
    }

    fn router(shards: usize) -> ShardedGraphManager {
        ShardedGraphManager::build_in_memory(
            &linear_trace(),
            ShardedConfig::default()
                .with_shards(shards)
                .with_manager(GraphManagerConfig::default().with_snapshot_cache(16)),
        )
        .unwrap()
    }

    #[test]
    fn sharded_snapshots_match_single_manager() {
        let events = linear_trace();
        let single = GraphManager::build_in_memory(&events, GraphManagerConfig::default()).unwrap();
        let single = SharedGraphManager::new(single);
        for shards in [1, 2, 3, 5] {
            let sharded = router(shards);
            assert!(sharded.shard_count() >= 1 && sharded.shard_count() <= shards);
            for t in [0i64, 1, 15, 20, 21, 40, 41, 59, 60, 99] {
                let opts = AttrOptions::all();
                let want = single.snapshot_at(Timestamp(t), &opts).unwrap();
                let got = sharded.snapshot_at(Timestamp(t), &opts).unwrap();
                assert_eq!(got, want, "shards={shards} t={t}");
            }
        }
    }

    #[test]
    fn routing_respects_boundaries() {
        let sharded = ShardedGraphManager::build_in_memory(
            &linear_trace(),
            ShardedConfig::default().with_boundaries(vec![Timestamp(21), Timestamp(41)]),
        )
        .unwrap();
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.shard_index_for(Timestamp(i64::MIN)), 0);
        assert_eq!(sharded.shard_index_for(Timestamp(20)), 0);
        assert_eq!(sharded.shard_index_for(Timestamp(21)), 1);
        assert_eq!(sharded.shard_index_for(Timestamp(40)), 1);
        assert_eq!(sharded.shard_index_for(Timestamp(41)), 2);
        assert_eq!(sharded.shard_index_for(Timestamp(i64::MAX)), 2);
        let infos = sharded.shard_infos();
        assert_eq!(infos[0].lower, None);
        assert_eq!(infos[0].upper, Some(Timestamp(21)));
        assert_eq!(infos[2].lower, Some(Timestamp(41)));
        assert_eq!(infos[2].upper, None);
        assert_eq!(infos.iter().map(|i| i.events).sum::<usize>(), 60);
    }

    #[test]
    fn degenerate_boundaries_are_suppressed() {
        // Boundaries below, at, and above the whole history collapse into a
        // single shard rather than building empty indexes.
        let sharded = ShardedGraphManager::build_in_memory(
            &linear_trace(),
            ShardedConfig::default().with_boundaries(vec![
                Timestamp(-100),
                Timestamp(1),
                Timestamp(30),
            ]),
        )
        .unwrap();
        assert_eq!(sharded.shard_count(), 2);
        let snap = sharded
            .snapshot_at(Timestamp(60), &AttrOptions::all())
            .unwrap();
        assert_eq!(snap.node_count(), 60);
    }

    #[test]
    fn appends_route_to_the_tail_and_historical_shards_stay_clean() {
        let sharded = router(3);
        let opts = AttrOptions::all();
        // Prime a historical point's cache on shard 0.
        let mut session = sharded.session();
        session.retrieve_cached(Timestamp(10), &opts).unwrap();
        session.retrieve_cached(Timestamp(10), &opts).unwrap();
        let before = sharded.shard_infos();
        assert_eq!(before[0].cache_entries, 1);
        sharded.append_event(Event::add_node(61, 9001)).unwrap();
        sharded.append_event(Event::add_node(62, 9002)).unwrap();
        let after = sharded.shard_infos();
        // The historical entry survived the tail appends.
        assert_eq!(after[0].cache_entries, 1);
        assert_eq!(after[0].cache.invalidations, 0);
        assert_eq!(
            after.last().unwrap().events,
            before.last().unwrap().events + 2
        );
        // And the appended nodes are visible at the tail.
        let snap = sharded.snapshot_at(Timestamp(62), &opts).unwrap();
        assert!(snap.has_node(tgraph::NodeId(9001)));
        assert!(snap.has_node(tgraph::NodeId(9002)));
    }

    #[test]
    fn appends_below_the_tail_bound_are_rejected() {
        let sharded = router(3);
        let err = sharded.append_event(Event::add_node(5, 9001)).unwrap_err();
        assert!(err.to_string().contains("immutable"), "{err}");
        // Ordinary chronology violations still surface from the tail shard.
        sharded.append_event(Event::add_node(70, 9001)).unwrap();
        let err = sharded.append_event(Event::add_node(65, 9002)).unwrap_err();
        assert!(err.to_string().contains("appended after"), "{err}");
    }

    #[test]
    fn tail_rolls_when_the_event_budget_is_exceeded() {
        let sharded = ShardedGraphManager::build_in_memory(
            &linear_trace(),
            ShardedConfig::default().with_shards(2).with_shard_events(5),
        )
        .unwrap();
        let shards_before = sharded.shard_count();
        // The built tail already exceeds the budget, so the first
        // strictly-later append rolls.
        sharded.append_event(Event::add_node(100, 9000)).unwrap();
        assert_eq!(sharded.shard_count(), shards_before + 1);
        let infos = sharded.shard_infos();
        assert_eq!(infos.last().unwrap().lower, Some(Timestamp(100)));
        assert_eq!(infos.last().unwrap().events, 1);
        // Appends keep landing on the new tail until it too fills up.
        for i in 1..5 {
            sharded
                .append_event(Event::add_node(100 + i, 9000 + i as u64))
                .unwrap();
        }
        assert_eq!(sharded.shard_count(), shards_before + 1);
        sharded.append_event(Event::add_node(200, 9500)).unwrap();
        assert_eq!(sharded.shard_count(), shards_before + 2);
        // History is intact across every roll.
        let snap = sharded
            .snapshot_at(Timestamp(200), &AttrOptions::all())
            .unwrap();
        assert_eq!(snap.node_count(), 60 + 6);
        assert!(snap.has_node(tgraph::NodeId(9500)));
        // And pre-roll history still answers from the rolled-over shards.
        let mid = sharded
            .snapshot_at(Timestamp(102), &AttrOptions::all())
            .unwrap();
        assert_eq!(mid.node_count(), 60 + 3);
    }

    #[test]
    fn response_bytes_put_after_a_roll_stay_on_the_shard_that_rendered_them() {
        use crate::response_cache::WireFormat;
        // The exact race the pinned-handle API exists for: a reply is
        // rendered from the tail, a concurrent append rolls a new tail
        // (fresh epoch 0, same as the old tail's), and only then does the
        // renderer insert its bytes. The insert must land on the shard the
        // snapshot came from — where it is harmless — never on the new
        // tail, which would serve pre-roll bytes for post-roll queries.
        let sharded = ShardedGraphManager::build_in_memory(
            &linear_trace(),
            ShardedConfig::default()
                .with_shards(2)
                .with_shard_events(4)
                .with_manager(
                    GraphManagerConfig::default()
                        .with_snapshot_cache(8)
                        .with_response_cache(8),
                ),
        )
        .unwrap();
        let opts = AttrOptions::all();
        let t = Timestamp(1000);
        let mut session = sharded.session();
        let (old_shard, point) = session.retrieve_cached_routed(t, &opts).unwrap();
        let bytes: Arc<[u8]> = b"pre-roll reply".to_vec().into();
        // The roll happens between the render and the insert.
        sharded.append_event(Event::add_node(100, 9000)).unwrap();
        assert_eq!(sharded.shard_count(), 3);
        assert!(
            old_shard.response_cache_put(
                t,
                &opts,
                WireFormat::Text,
                Arc::clone(&bytes),
                point.epoch
            ),
            "the rendering shard's epoch is unchanged, so it may cache"
        );
        // t=1000 now routes to the rolled tail, whose cache never saw the
        // stale bytes.
        let owning = sharded.shard_for(t).unwrap();
        assert!(owning
            .response_cache_get(t, &opts, WireFormat::Text)
            .is_none());
        // And a fresh retrieval reflects the append.
        let snap = sharded.snapshot_at(t, &opts).unwrap();
        assert!(snap.has_node(tgraph::NodeId(9000)));
    }

    #[test]
    fn rolled_shards_draw_their_store_from_the_factory() {
        let calls = Arc::new(AtomicUsize::new(0));
        let counting = {
            let calls = Arc::clone(&calls);
            move |_shard: usize| -> Arc<dyn KeyValueStore> {
                calls.fetch_add(1, Ordering::Relaxed);
                Arc::new(MemStore::new())
            }
        };
        let sharded = ShardedGraphManager::build(
            &linear_trace(),
            ShardedConfig::default().with_shards(2).with_shard_events(5),
            counting,
        )
        .unwrap();
        let built = sharded.shard_count();
        assert_eq!(calls.load(Ordering::Relaxed), built);
        // A roll must go back to the same factory (durable deployments keep
        // rolled history durable), not silently fall back to a MemStore.
        sharded.append_event(Event::add_node(100, 9000)).unwrap();
        assert_eq!(sharded.shard_count(), built + 1);
        assert_eq!(calls.load(Ordering::Relaxed), built + 1);
    }

    #[test]
    fn multipoint_preserves_request_order_across_shards() {
        let sharded = router(3);
        let opts = AttrOptions::all();
        let times: Vec<Timestamp> = [55i64, 5, 35, 15, 45, 25]
            .into_iter()
            .map(Timestamp)
            .collect();
        let mut session = sharded.session();
        let snaps = session.get_graphs_at(&times, &opts).unwrap();
        assert_eq!(snaps.len(), times.len());
        for (t, snap) in times.iter().zip(&snaps) {
            assert_eq!(
                snap.node_count(),
                t.raw() as usize,
                "snapshot order must follow request order (t={})",
                t.raw()
            );
        }
        // Overlays were recorded across multiple shard sessions.
        assert_eq!(session.handles().len(), times.len());
        assert_eq!(session.release_now(), times.len());
    }

    #[test]
    fn history_samples_span_shards() {
        let sharded = router(4);
        let times: Vec<Timestamp> = (0..=5).map(|i| Timestamp(i * 12)).collect();
        let snaps = sharded.snapshots_at(&times, &AttrOptions::all()).unwrap();
        for (t, snap) in times.iter().zip(&snaps) {
            assert_eq!(snap.node_count(), (t.raw().clamp(0, 60)) as usize);
        }
    }

    #[test]
    fn interval_and_expr_are_range_restricted() {
        let sharded = router(3);
        let opts = AttrOptions::all();
        let mut session = sharded.session();
        // Fully inside shard 1 ([21, 41)): fine.
        let (graph, transients) = session
            .interval(Timestamp(25), Timestamp(30), &opts)
            .unwrap();
        assert_eq!(graph.node_count(), 5); // nodes 25..29
        assert!(transients.is_empty());
        // Spanning shards: a clear error, not a wrong answer.
        let err = session
            .interval(Timestamp(10), Timestamp(50), &opts)
            .unwrap_err();
        assert!(err.to_string().contains("spans shards"), "{err}");
        let tex = TimeExpression::diff(30i64, 25i64);
        assert!(session.expr(&tex, Timestamp(25), &opts).is_ok());
        let spanning = TimeExpression::diff(50i64, 10i64);
        let err = session.expr(&spanning, Timestamp(10), &opts).unwrap_err();
        assert!(err.to_string().contains("spans shards"), "{err}");
    }

    #[test]
    fn keys_registered_before_a_roll_survive_it() {
        let sharded = ShardedGraphManager::build_in_memory(
            &linear_trace(),
            ShardedConfig::default().with_shard_events(5),
        )
        .unwrap();
        sharded.register_key("alice", tgraph::NodeId(1001));
        sharded.append_event(Event::add_node(100, 9000)).unwrap();
        assert!(sharded.shard_count() > 1);
        assert_eq!(sharded.resolve_key("alice"), Some(tgraph::NodeId(1001)));
        // The rolled tail resolves it too.
        let tail = sharded.shard_handles().unwrap().pop().unwrap();
        assert_eq!(tail.read().resolve_key("alice"), Some(tgraph::NodeId(1001)));
    }

    #[test]
    fn sessions_release_across_shards_on_drop() {
        let sharded = router(3);
        let opts = AttrOptions::all();
        {
            let mut session = sharded.session();
            session.retrieve_cached(Timestamp(10), &opts).unwrap();
            session.retrieve_cached(Timestamp(50), &opts).unwrap();
            let overlays: usize = sharded.shard_infos().iter().map(|i| i.overlays).sum();
            assert_eq!(overlays, 2);
        }
        // The cache (capacity 16) keeps the overlays warm, but the sessions'
        // own references are gone.
        for shared in sharded.shard_handles().unwrap() {
            let gm = shared.read();
            for entry in gm.cache_entries() {
                assert_eq!(entry.refs, 1, "only the cache reference remains");
            }
        }
    }

    #[test]
    fn churn_trace_equivalence_with_appends() {
        let ds = churn_trace(&ChurnConfig::tiny(424));
        let single =
            GraphManager::build_in_memory(&ds.events, GraphManagerConfig::default()).unwrap();
        let single = SharedGraphManager::new(single);
        let sharded = ShardedGraphManager::build_in_memory(
            &ds.events,
            ShardedConfig::default().with_shards(4).with_shard_events(8),
        )
        .unwrap();
        let end = ds.end_time().raw();
        for i in 0..20 {
            let ev = Event::add_node(end + 1 + i, 77_000 + i as u64);
            single.append_event(ev.clone()).unwrap();
            sharded.append_event(ev).unwrap();
        }
        let opts = AttrOptions::all();
        for t in [
            ds.start_time().raw(),
            (ds.start_time().raw() + end) / 2,
            end,
            end + 10,
            end + 20,
        ] {
            assert_eq!(
                sharded.snapshot_at(Timestamp(t), &opts).unwrap(),
                single.snapshot_at(Timestamp(t), &opts).unwrap(),
                "t={t}"
            );
        }
    }

    #[test]
    fn single_wrapping_preserves_shared_manager_behavior() {
        let gm = GraphManager::build_in_memory(
            &toy_trace().events,
            GraphManagerConfig::default().with_snapshot_cache(8),
        )
        .unwrap();
        let shared = SharedGraphManager::new(gm);
        let sharded = ShardedGraphManager::single(shared.clone());
        assert_eq!(sharded.shard_count(), 1);
        assert!(sharded.cache_enabled());
        let mut session = sharded.session();
        let point = session
            .retrieve_cached(Timestamp(6), &AttrOptions::all())
            .unwrap();
        assert!(!point.cache_hit);
        // The wrapped handle and the router see the same manager.
        assert_eq!(shared.read().cache_len(), 1);
    }

    #[test]
    fn shard_info_roundtrips_through_the_codec() {
        let info = ShardInfo {
            index: 2,
            lower: Some(Timestamp(-5)),
            upper: None,
            events: 42,
            overlays: 3,
            cache_entries: 2,
            cache: CacheStats {
                hits: 9,
                misses: 4,
                insertions: 4,
                invalidations: 1,
                evictions: 0,
            },
            response_entries: 1,
            response: ResponseCacheStats {
                hits: 7,
                misses: 2,
                insertions: 2,
                invalidations: 0,
                evictions: 1,
                bytes: 128,
            },
            queries: 17,
            appends: 5,
        };
        let mut buf = Vec::new();
        info.encode(&mut buf);
        let decoded = ShardInfo::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded, info);
    }

    #[test]
    fn storage_info_roundtrips_through_the_codec() {
        let info = StorageInfo {
            durable: true,
            policy: "interval=250".into(),
            segments: 3,
            segment_bytes: 4096,
            wal_bytes: 512,
            wal_appends: 17,
            wal_fsyncs: 5,
            torn_bytes: 7,
            torn_truncations: 1,
            recovery_ms: 42,
        };
        let mut buf = Vec::new();
        info.encode(&mut buf);
        let decoded = StorageInfo::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded, info);
    }

    fn durable_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sharded-durable-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_build_and_open_match_the_in_memory_router() {
        let dir = durable_dir("roundtrip");
        let ds = churn_trace(&ChurnConfig::tiny(77));
        let config = ShardedConfig::default()
            .with_shards(3)
            .with_shard_events(16);
        let mem = ShardedGraphManager::build_in_memory(&ds.events, config.clone()).unwrap();
        let built = ShardedGraphManager::build_durable(
            &ds.events,
            config.clone(),
            &dir,
            WalSyncPolicy::Off,
        )
        .unwrap();
        assert!(built.is_durable() && !mem.is_durable());
        assert!(crate::durable::is_durable_dir(&dir));
        drop(built);
        let opened = ShardedGraphManager::open(&dir, config, WalSyncPolicy::Off).unwrap();
        assert_eq!(opened.shard_count(), mem.shard_count());
        let opts = AttrOptions::all();
        let (lo, hi) = (ds.start_time().raw(), ds.end_time().raw());
        for t in [lo, (lo + hi) / 2, hi] {
            assert_eq!(
                opened.snapshot_at(Timestamp(t), &opts).unwrap(),
                mem.snapshot_at(Timestamp(t), &opts).unwrap(),
                "t={t}"
            );
        }
        let info = opened.storage_info();
        assert!(info.durable);
        assert_eq!(info.segments as usize, opened.shard_count() - 1);
        assert!(info.recovery_ms >= 1);
        assert_eq!(info.torn_truncations, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_appends_and_rolls_survive_a_reopen() {
        let dir = durable_dir("rolls");
        let config = ShardedConfig::default().with_shards(2).with_shard_events(5);
        let sharded = ShardedGraphManager::build_durable(
            &linear_trace(),
            config.clone(),
            &dir,
            WalSyncPolicy::Always,
        )
        .unwrap();
        // The built tail already exceeds the 5-event budget, so the first
        // append rolls a new shard; the rest land in the fresh tail.
        for i in 0..8u64 {
            sharded
                .append_event(Event::add_node(100 + i as i64, 9000 + i))
                .unwrap();
        }
        let shards = sharded.shard_count();
        let segments = sharded.storage_info().segments;
        assert!(shards >= 3, "expected a roll, got {shards} shards");
        assert_eq!(segments as usize, shards - 1);
        drop(sharded);

        let opened = ShardedGraphManager::open(&dir, config, WalSyncPolicy::Always).unwrap();
        assert_eq!(opened.shard_count(), shards);
        let snap = opened
            .snapshot_at(Timestamp(200), &AttrOptions::all())
            .unwrap();
        for i in 0..8u64 {
            assert!(snap.has_node(tgraph::NodeId(9000 + i)), "node {i} lost");
        }
        assert_eq!(snap.node_count(), 60 + 8);
        // Appending keeps working on the recovered tail.
        opened.append_event(Event::add_node(300, 9990)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_torn_wal_tail_is_truncated_on_open() {
        let dir = durable_dir("torn");
        let config = ShardedConfig::default().with_shards(1);
        let sharded = ShardedGraphManager::build_durable(
            &linear_trace(),
            config.clone(),
            &dir,
            WalSyncPolicy::Always,
        )
        .unwrap();
        sharded.append_event(Event::add_node(61, 9001)).unwrap();
        drop(sharded);
        // Simulate a crash mid-write: append half a record to the WAL.
        let wal = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| {
                p.extension().is_some_and(|x| x == "log")
                    && p.file_name().is_some_and(|f| f != "keys.log")
            })
            .expect("wal file");
        use std::io::Write;
        std::fs::OpenOptions::new()
            .append(true)
            .open(&wal)
            .unwrap()
            .write_all(&[0xA1, 0xFF, 0x03])
            .unwrap();
        let opened = ShardedGraphManager::open(&dir, config, WalSyncPolicy::Always).unwrap();
        let info = opened.storage_info();
        assert_eq!(info.torn_truncations, 1);
        assert_eq!(info.torn_bytes, 3);
        let snap = opened
            .snapshot_at(Timestamp(61), &AttrOptions::all())
            .unwrap();
        assert!(snap.has_node(tgraph::NodeId(9001)));
        assert_eq!(snap.node_count(), 61);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_rejected_apply_record_is_dropped_on_first_tail_touch() {
        let dir = durable_dir("heal");
        let config = ShardedConfig::default().with_shards(2);
        let sharded = ShardedGraphManager::build_durable(
            &linear_trace(),
            config.clone(),
            &dir,
            WalSyncPolicy::Always,
        )
        .unwrap();
        drop(sharded);
        // Simulate a crash between the WAL write-ahead and the rollback of
        // a rejected apply: a well-framed, checksum-valid final record whose
        // event the rebuild must refuse (node 1001 already exists).
        let wal_file = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| {
                p.extension().is_some_and(|x| x == "log")
                    && p.file_name().is_some_and(|f| f != "keys.log")
            })
            .expect("wal file");
        let bad = Event::add_node(61, 1001);
        let mut replay = kvstore::wal::Wal::open(&wal_file, WalSyncPolicy::Always).unwrap();
        assert_eq!(replay.torn_bytes, 0);
        replay.wal.append(&bad).unwrap();
        drop(replay);
        let poisoned_len = std::fs::metadata(&wal_file).unwrap().len();

        // Open verifies frames, not semantics, so it accepts the record and
        // the cold tail counts it.
        let opened = ShardedGraphManager::open(&dir, config, WalSyncPolicy::Always).unwrap();
        let tail = opened.shard_count() - 1;
        let events_before = opened.shard_infos()[tail].events;
        // The first tail touch fails the build, drops exactly that record,
        // rebuilds, and serves the surviving history.
        let snap = opened
            .snapshot_at(Timestamp(60), &AttrOptions::all())
            .unwrap();
        assert_eq!(snap.node_count(), 60);
        assert_eq!(opened.shard_infos()[tail].events, events_before - 1);
        assert_eq!(
            std::fs::metadata(&wal_file).unwrap().len(),
            poisoned_len - kvstore::wal_record_len(&bad),
            "exactly the poisoned record must be dropped from the log"
        );
        // The healed tail keeps ingesting, and the heal is durable: a
        // second recovery replays a clean log.
        opened.append_event(Event::add_node(61, 9001)).unwrap();
        drop(opened);
        let reopened = ShardedGraphManager::open(
            &dir,
            ShardedConfig::default().with_shards(2),
            WalSyncPolicy::Always,
        )
        .unwrap();
        let snap = reopened
            .snapshot_at(Timestamp(61), &AttrOptions::all())
            .unwrap();
        assert_eq!(snap.node_count(), 61);
        assert!(snap.has_node(tgraph::NodeId(9001)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_defers_historical_shard_builds_until_first_touch() {
        let dir = durable_dir("lazy");
        let ds = churn_trace(&ChurnConfig::tiny(79));
        let config = ShardedConfig::default().with_shards(3);
        let mem = ShardedGraphManager::build_in_memory(&ds.events, config.clone()).unwrap();
        drop(
            ShardedGraphManager::build_durable(
                &ds.events,
                config.clone(),
                &dir,
                WalSyncPolicy::Off,
            )
            .unwrap(),
        );

        let opened = ShardedGraphManager::open(&dir, config, WalSyncPolicy::Off).unwrap();
        let shards = opened.shard_count();
        assert!(shards >= 2, "need a historical shard, got {shards}");
        // Every shard — tail included — came up cold; the stats, cache,
        // banner, and probe surfaces must all leave them cold.
        assert!(!opened.is_hydrated(shards - 1));
        assert!(!opened.is_hydrated(0));
        let infos = opened.shard_infos();
        assert_eq!(infos.len(), shards);
        assert_eq!(infos, mem.shard_infos(), "cold stats must match eager ones");
        let _ = opened.cache_overview();
        assert_eq!(
            opened.history_range().unwrap(),
            mem.history_range().unwrap()
        );
        assert!(opened
            .peek_cached(ds.start_time(), &AttrOptions::all())
            .is_none());
        assert!(!opened.is_hydrated(0), "a stats read must not hydrate");

        // A key registered while the shard is cold is visible after its
        // deferred build, exactly as if every shard had been built eagerly.
        let node = match ds.events.events()[0].kind {
            EventKind::AddNode { node } => node,
            ref k => panic!("first event should add a node, got {k:?}"),
        };
        opened.register_key("first", node);
        assert_eq!(opened.resolve_key("first"), Some(node));

        // First touch hydrates exactly the owning shard, and the answer
        // matches the in-memory router's.
        let t = ds.start_time();
        let opts = AttrOptions::all();
        assert_eq!(
            opened.snapshot_at(t, &opts).unwrap(),
            mem.snapshot_at(t, &opts).unwrap()
        );
        assert!(opened.is_hydrated(0));
        assert_eq!(
            opened.shard_at(0).unwrap().read().resolve_key("first"),
            Some(node),
            "registry must replay onto the hydrated shard"
        );
        // The tail stays cold through all of the above and hydrates on its
        // first append, which remains durable.
        assert!(!opened.is_hydrated(shards - 1));
        opened
            .append_event(Event::add_node(ds.end_time().raw() + 1, 777_777))
            .unwrap();
        assert!(opened.is_hydrated(shards - 1));
        assert!(opened.storage_info().wal_appends >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn health_info_roundtrips_through_the_codec() {
        let info = HealthInfo {
            shards: vec![
                ShardHealth {
                    index: 0,
                    state: "ready".into(),
                    failures: 0,
                },
                ShardHealth {
                    index: 1,
                    state: "quarantined".into(),
                    failures: 3,
                },
            ],
            degraded: true,
            degraded_reason: "injected EIO at wal.append".into(),
            quarantined: 1,
            hydration_failures: 3,
            storage_retries: 7,
        };
        let mut buf = Vec::new();
        info.encode(&mut buf);
        let decoded = HealthInfo::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(decoded, info);
    }

    /// Appends `n` records to the durable dir's WAL that the rebuild must
    /// refuse (duplicate node ids), simulating a crash that left applied-
    /// rejected records behind. One such record is healed by the tail's
    /// drop-last-record retry; two exceed it and quarantine the tail.
    fn poison_tail_wal(dir: &std::path::Path, n: usize) {
        let wal_file = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| {
                p.extension().is_some_and(|x| x == "log")
                    && p.file_name().is_some_and(|f| f != "keys.log")
            })
            .expect("wal file");
        let mut replay = kvstore::wal::Wal::open(&wal_file, WalSyncPolicy::Always).unwrap();
        for i in 0..n {
            // Node 1001 + i already exists in `linear_trace()`.
            replay
                .wal
                .append(&Event::add_node(61 + i as i64, 1001 + i as u64))
                .unwrap();
        }
    }

    #[test]
    fn a_tail_that_fails_hydration_is_quarantined_and_fast_fails() {
        let dir = durable_dir("quarantine");
        let config = ShardedConfig::default().with_shards(2);
        drop(
            ShardedGraphManager::build_durable(
                &linear_trace(),
                config.clone(),
                &dir,
                WalSyncPolicy::Always,
            )
            .unwrap(),
        );
        poison_tail_wal(&dir, 2);
        let opened = ShardedGraphManager::open(
            &dir,
            config.with_quarantine_retry_ms(600_000),
            WalSyncPolicy::Always,
        )
        .unwrap();
        let tail = opened.shard_count() - 1;
        let opts = AttrOptions::all();
        // First touch runs the build (and the one-record heal retry), fails
        // on the second poisoned record, and quarantines the tail.
        let err = opened.snapshot_at(Timestamp(61), &opts).unwrap_err();
        assert!(
            matches!(err, DgError::ShardQuarantined { .. }),
            "expected quarantine, got {err}"
        );
        // Touches inside the retry window fast-fail without re-attempting.
        let err = opened.snapshot_at(Timestamp(61), &opts).unwrap_err();
        assert!(err.to_string().contains("quarantined"), "{err}");
        let health = opened.health_info();
        assert_eq!(health.shards[tail].state, "quarantined");
        assert_eq!(health.shards[tail].failures, 1, "fast-fail must not retry");
        assert_eq!(health.quarantined, 1);
        assert_eq!(health.hydration_failures, 1);
        // Healthy shards are untouched and keep serving.
        let snap = opened.snapshot_at(Timestamp(10), &opts).unwrap();
        assert_eq!(snap.node_count(), 10);
        assert_eq!(opened.health_info().shards[0].state, "ready");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_quarantined_tail_recovers_once_the_bad_records_drain() {
        let dir = durable_dir("requarantine");
        let config = ShardedConfig::default().with_shards(2);
        drop(
            ShardedGraphManager::build_durable(
                &linear_trace(),
                config.clone(),
                &dir,
                WalSyncPolicy::Always,
            )
            .unwrap(),
        );
        poison_tail_wal(&dir, 2);
        let opened = ShardedGraphManager::open(
            &dir,
            config.with_quarantine_retry_ms(0),
            WalSyncPolicy::Always,
        )
        .unwrap();
        let opts = AttrOptions::all();
        // Touch 1: the heal retry drops one poisoned record, the build
        // still fails on the other — quarantined.
        let err = opened.snapshot_at(Timestamp(61), &opts).unwrap_err();
        assert!(err.to_string().contains("quarantined"), "{err}");
        // Retry window 0: the next touch re-hydrates; the heal retry drops
        // the remaining poisoned record and the build succeeds.
        let snap = opened.snapshot_at(Timestamp(61), &opts).unwrap();
        assert_eq!(snap.node_count(), 60);
        let health = opened.health_info();
        assert_eq!(health.shards.last().unwrap().state, "ready");
        assert_eq!(health.quarantined, 0);
        assert_eq!(health.hydration_failures, 1, "the counter is monotonic");
        // The recovered tail ingests again, durably.
        opened.append_event(Event::add_node(70, 9001)).unwrap();
        drop(opened);
        let reopened = ShardedGraphManager::open(
            &dir,
            ShardedConfig::default().with_shards(2),
            WalSyncPolicy::Always,
        )
        .unwrap();
        let snap = reopened.snapshot_at(Timestamp(70), &opts).unwrap();
        assert!(snap.has_node(tgraph::NodeId(9001)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn key_bindings_survive_a_router_reopen() {
        let dir = durable_dir("router-keys");
        let config = ShardedConfig::default().with_shards(2);
        let built = ShardedGraphManager::build_durable(
            &linear_trace(),
            config.clone(),
            &dir,
            WalSyncPolicy::Always,
        )
        .unwrap();
        built.register_key("alice", tgraph::NodeId(1001));
        built.register_key("alice", tgraph::NodeId(1002)); // latest wins
        built.register_key("bob", tgraph::NodeId(1003));
        drop(built);
        let opened = ShardedGraphManager::open(&dir, config, WalSyncPolicy::Always).unwrap();
        assert_eq!(opened.resolve_key("alice"), Some(tgraph::NodeId(1002)));
        assert_eq!(opened.resolve_key("bob"), Some(tgraph::NodeId(1003)));
        // The recovered registry replays onto lazily hydrated shards too.
        assert_eq!(
            opened.shard_at(0).unwrap().read().resolve_key("bob"),
            Some(tgraph::NodeId(1003))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_degraded_tail_keeps_serving_reads_and_reports_health() {
        let dir = durable_dir("degraded-router");
        let config = ShardedConfig::default().with_shards(2);
        let sharded = ShardedGraphManager::build_durable(
            &linear_trace(),
            config,
            &dir,
            WalSyncPolicy::Always,
        )
        .unwrap();
        let scope = dir.to_string_lossy().to_string();
        kvstore::faults::arm_scoped(
            "wal.append",
            kvstore::FaultKind::Eio,
            0,
            Some(1),
            Some(&scope),
        );
        let err = sharded.append_event(Event::add_node(61, 9001)).unwrap_err();
        assert!(err.to_string().contains("DEGRADED"), "{err}");
        // Degradation is sticky until restart even though the fault cleared.
        let err = sharded.append_event(Event::add_node(62, 9002)).unwrap_err();
        assert!(err.to_string().contains("DEGRADED"), "{err}");
        // Reads keep serving the whole history.
        let snap = sharded
            .snapshot_at(Timestamp(60), &AttrOptions::all())
            .unwrap();
        assert_eq!(snap.node_count(), 60);
        let health = sharded.health_info();
        assert!(health.degraded);
        assert!(!health.degraded_reason.is_empty());
        assert_eq!(health.shards.last().unwrap().state, "degraded");
        assert_eq!(health.shards[0].state, "ready");
        kvstore::faults::clear("wal.append");
        std::fs::remove_dir_all(&dir).ok();
    }
}
