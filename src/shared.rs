//! Concurrent access to one [`GraphManager`]: the read/write split.
//!
//! A [`GraphManager`] is single-threaded by design — retrieval overlays
//! snapshots onto the GraphPool, which mutates shared bitmaps. The snapshot
//! *computation* itself, however, only reads the DeltaGraph index. The
//! [`SharedGraphManager`] exploits that split: the expensive part of a query
//! (planning, delta fetches, eventlist replay) runs under a shared read
//! lock, so many sessions retrieve concurrently, and only the cheap overlay
//! and append operations take the exclusive write lock.
//!
//! Sessions track the pool handles they create through a [`PoolSession`];
//! dropping the session releases its overlays and runs the lazy cleaner, so
//! a disconnecting client can never leak pool bits.

use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use deltagraph::DgResult;
use graphpool::GraphId;
use tgraph::{AttrOptions, Event, Snapshot, TimeExpression, Timestamp};

use crate::manager::GraphManager;

/// A cloneable, thread-safe handle to one [`GraphManager`].
#[derive(Clone)]
pub struct SharedGraphManager {
    inner: Arc<RwLock<GraphManager>>,
}

// GraphManager must stay usable across threads for the server; assert it here
// so a future non-Send field fails at this line rather than at a use site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GraphManager>();
};

impl SharedGraphManager {
    /// Wraps a manager for shared use.
    pub fn new(manager: GraphManager) -> Self {
        SharedGraphManager {
            inner: Arc::new(RwLock::new(manager)),
        }
    }

    /// Shared read access. Snapshot computation through
    /// [`GraphManager::index`] needs only this.
    pub fn read(&self) -> RwLockReadGuard<'_, GraphManager> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive write access, for overlays, appends, and releases.
    pub fn write(&self) -> RwLockWriteGuard<'_, GraphManager> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Computes the snapshot as of `t` under the read lock (no overlay).
    pub fn snapshot_at(&self, t: Timestamp, opts: &AttrOptions) -> DgResult<Snapshot> {
        self.read().index().get_snapshot(t, opts)
    }

    /// Computes several snapshots through the Steiner-tree planner under the
    /// read lock (no overlays).
    pub fn snapshots_at(&self, times: &[Timestamp], opts: &AttrOptions) -> DgResult<Vec<Snapshot>> {
        self.read().index().get_snapshots(times, opts)
    }

    /// Computes the interval graph over `[start, end)` plus its transient
    /// events under the read lock.
    pub fn snapshot_interval(
        &self,
        start: Timestamp,
        end: Timestamp,
        opts: &AttrOptions,
    ) -> DgResult<(Snapshot, Vec<Event>)> {
        self.read().index().get_snapshot_interval(start, end, opts)
    }

    /// Evaluates a Boolean time expression under the read lock.
    pub fn snapshot_expr(&self, expr: &TimeExpression, opts: &AttrOptions) -> DgResult<Snapshot> {
        self.read().index().get_time_expression(expr, opts)
    }

    /// Appends a live event under the write lock.
    pub fn append_event(&self, event: Event) -> DgResult<()> {
        self.write().append_event(event)
    }

    /// Starts a session whose overlays are released when it drops.
    pub fn session(&self) -> PoolSession {
        PoolSession {
            shared: self.clone(),
            handles: Vec::new(),
        }
    }
}

/// Tracks the GraphPool handles one session created, releasing them (and
/// running the cleaner) when dropped — the server's per-connection guard.
pub struct PoolSession {
    shared: SharedGraphManager,
    handles: Vec<GraphId>,
}

impl PoolSession {
    /// Overlays an already-computed snapshot, recording the handle against
    /// this session. Takes the write lock briefly.
    pub fn overlay(&mut self, snapshot: &Snapshot, t: Timestamp) -> GraphId {
        let id = self.shared.write().overlay_snapshot(snapshot, t);
        self.handles.push(id);
        id
    }

    /// Handles created by this session, in creation order.
    pub fn handles(&self) -> &[GraphId] {
        &self.handles
    }

    /// Releases every handle this session created, runs the cleaner, and
    /// returns how many were released. Called automatically on drop.
    pub fn release_now(&mut self) -> usize {
        if self.handles.is_empty() {
            return 0;
        }
        let released = self.handles.len();
        let mut gm = self.shared.write();
        for id in self.handles.drain(..) {
            gm.release(id);
        }
        gm.cleanup();
        released
    }

    /// The shared manager this session runs against.
    pub fn shared(&self) -> &SharedGraphManager {
        &self.shared
    }
}

impl Drop for PoolSession {
    fn drop(&mut self) {
        self.release_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphManagerConfig;
    use datagen::toy_trace;
    use std::thread;

    fn shared() -> SharedGraphManager {
        let gm = GraphManager::build_in_memory(&toy_trace().events, GraphManagerConfig::default())
            .unwrap();
        SharedGraphManager::new(gm)
    }

    #[test]
    fn concurrent_readers_agree_with_direct_retrieval() {
        let sm = shared();
        let ds = toy_trace();
        let workers: Vec<_> = [3i64, 6, 9, 10]
            .into_iter()
            .map(|t| {
                let sm = sm.clone();
                let expected = ds.snapshot_at(Timestamp(t));
                thread::spawn(move || {
                    for _ in 0..20 {
                        let snap = sm.snapshot_at(Timestamp(t), &AttrOptions::all()).unwrap();
                        assert_eq!(snap, expected);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn session_overlays_release_on_drop() {
        let sm = shared();
        {
            let mut session = sm.session();
            let snap = sm.snapshot_at(Timestamp(6), &AttrOptions::all()).unwrap();
            let id = session.overlay(&snap, Timestamp(6));
            assert_eq!(session.handles(), &[id]);
            assert_eq!(sm.read().pool().active_overlay_count(), 1);
        }
        assert_eq!(sm.read().pool().active_overlay_count(), 0);
    }

    #[test]
    fn appends_are_visible_to_subsequent_reads() {
        let sm = shared();
        sm.append_event(Event::add_node(20, 777)).unwrap();
        let snap = sm.snapshot_at(Timestamp(20), &AttrOptions::all()).unwrap();
        assert!(snap.has_node(tgraph::NodeId(777)));
    }
}
