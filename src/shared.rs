//! Concurrent access to one [`GraphManager`]: the read/write split.
//!
//! A [`GraphManager`] is single-threaded by design — retrieval overlays
//! snapshots onto the GraphPool, which mutates shared bitmaps. The snapshot
//! *computation* itself, however, only reads the DeltaGraph index. The
//! [`SharedGraphManager`] exploits that split: the expensive part of a query
//! (planning, delta fetches, eventlist replay) runs under a shared read
//! lock, so many sessions retrieve concurrently, and only the cheap overlay
//! and append operations take the exclusive write lock.
//!
//! Sessions track the pool handles they create through a [`PoolSession`];
//! dropping the session releases its overlays and runs the lazy cleaner, so
//! a disconnecting client can never leak pool bits.

use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use deltagraph::DgResult;
use graphpool::GraphId;
use tgraph::{AttrOptions, Event, Snapshot, TimeExpression, Timestamp};

use crate::cache::CacheStats;
use crate::manager::GraphManager;
use crate::response_cache::{ResponseCacheStats, WireFormat};

/// A cloneable, thread-safe handle to one [`GraphManager`].
#[derive(Clone)]
pub struct SharedGraphManager {
    inner: Arc<RwLock<GraphManager>>,
    /// Snapshot-cache capacity, copied out at wrap time (it is immutable
    /// config) so the disabled-cache fast path never touches the lock.
    cache_capacity: usize,
    /// Response-cache capacity, copied out for the same reason.
    response_cache_capacity: usize,
}

// GraphManager must stay usable across threads for the server; assert it here
// so a future non-Send field fails at this line rather than at a use site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GraphManager>();
};

impl SharedGraphManager {
    /// Wraps a manager for shared use.
    pub fn new(manager: GraphManager) -> Self {
        let cache_capacity = manager.cache_capacity();
        let response_cache_capacity = manager.response_cache_capacity();
        SharedGraphManager {
            inner: Arc::new(RwLock::new(manager)),
            cache_capacity,
            response_cache_capacity,
        }
    }

    /// Rebuilds a shared manager from a sealed shard segment (see
    /// [`GraphManager::build_from_segment`]); the recovery path for both
    /// historical shards and the tail after a restart.
    pub fn from_segment(
        segment: &kvstore::Segment,
        config: crate::manager::GraphManagerConfig,
        store: std::sync::Arc<dyn kvstore::KeyValueStore>,
    ) -> DgResult<Self> {
        Ok(Self::new(GraphManager::build_from_segment(
            segment, config, store,
        )?))
    }

    /// Whether the manager was configured with a snapshot cache.
    pub fn cache_enabled(&self) -> bool {
        self.cache_capacity > 0
    }

    /// Whether two handles wrap the *same* underlying manager. Epoch values
    /// are only comparable between handles for which this holds — a rolled
    /// tail shard is a different manager whose fresh epoch can coincide
    /// with the old tail's.
    pub fn same_manager(&self, other: &SharedGraphManager) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Whether the manager was configured with a rendered-response cache.
    pub fn response_cache_enabled(&self) -> bool {
        self.response_cache_capacity > 0
    }

    /// Pre-framed reply lookup (see
    /// [`GraphManager::response_cache_get`]). Takes the write lock briefly
    /// on an enabled cache; with it disabled this returns `None` without
    /// locking at all.
    pub fn response_cache_get(
        &self,
        t: Timestamp,
        opts: &AttrOptions,
        format: WireFormat,
    ) -> Option<Arc<[u8]>> {
        if !self.response_cache_enabled() {
            return None;
        }
        self.write().response_cache_get(t, opts, format)
    }

    /// Caches a freshly framed reply under the append-epoch guard (see
    /// [`GraphManager::response_cache_put`]). A no-op with the cache
    /// disabled.
    pub fn response_cache_put(
        &self,
        t: Timestamp,
        opts: &AttrOptions,
        format: WireFormat,
        bytes: Arc<[u8]>,
        computed_at_epoch: u64,
    ) -> bool {
        if !self.response_cache_enabled() {
            return false;
        }
        self.write()
            .response_cache_put(t, opts, format, bytes, computed_at_epoch)
    }

    /// The response cache's behavior counters.
    pub fn response_cache_stats(&self) -> ResponseCacheStats {
        self.read().response_cache_stats()
    }

    /// Shared read access. Snapshot computation through
    /// [`GraphManager::index`] needs only this.
    pub fn read(&self) -> RwLockReadGuard<'_, GraphManager> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive write access, for overlays, appends, and releases.
    pub fn write(&self) -> RwLockWriteGuard<'_, GraphManager> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Computes the snapshot as of `t` under the read lock (no overlay).
    pub fn snapshot_at(&self, t: Timestamp, opts: &AttrOptions) -> DgResult<Snapshot> {
        self.read().index().get_snapshot(t, opts)
    }

    /// Computes several snapshots through the Steiner-tree planner under the
    /// read lock (no overlays).
    pub fn snapshots_at(&self, times: &[Timestamp], opts: &AttrOptions) -> DgResult<Vec<Snapshot>> {
        self.read().index().get_snapshots(times, opts)
    }

    /// Computes the interval graph over `[start, end)` plus its transient
    /// events under the read lock.
    pub fn snapshot_interval(
        &self,
        start: Timestamp,
        end: Timestamp,
        opts: &AttrOptions,
    ) -> DgResult<(Snapshot, Vec<Event>)> {
        self.read().index().get_snapshot_interval(start, end, opts)
    }

    /// Evaluates a Boolean time expression under the read lock.
    pub fn snapshot_expr(&self, expr: &TimeExpression, opts: &AttrOptions) -> DgResult<Snapshot> {
        self.read().index().get_time_expression(expr, opts)
    }

    /// Appends a live event under the write lock. Cached snapshots at or
    /// after the event's time are invalidated as part of the append.
    pub fn append_event(&self, event: Event) -> DgResult<()> {
        self.write().append_event(event)
    }

    /// The snapshot cache's behavior counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.read().cache_stats()
    }

    /// Read-only probe of the shared snapshot cache: the cached snapshot for
    /// `(t, opts)` if present, without touching overlay references. `None`
    /// on a miss — the caller computes the snapshot itself (and decides
    /// whether that result is worth caching). Takes the write lock briefly
    /// (LRU and hit counters move on a hit); with the cache disabled it
    /// returns `None` without locking at all.
    pub fn peek_cached(&self, t: Timestamp, opts: &AttrOptions) -> Option<Arc<Snapshot>> {
        if !self.cache_enabled() {
            return None;
        }
        self.write().cache_peek(t, opts)
    }

    /// Starts a session whose overlays are released when it drops.
    pub fn session(&self) -> PoolSession {
        PoolSession {
            shared: self.clone(),
            handles: Vec::new(),
        }
    }
}

/// One point retrieval served through [`PoolSession::retrieve_cached`].
#[derive(Clone, Debug)]
pub struct CachedPoint {
    /// The materialized snapshot (shared with the cache on a hit).
    pub snapshot: Arc<Snapshot>,
    /// Whether the snapshot came from the shared cache.
    pub cache_hit: bool,
    /// The append epoch the snapshot is consistent with, read under the
    /// same lock that produced it. Callers caching anything derived from
    /// the snapshot (e.g. rendered response bytes) pass this to the insert
    /// path so a result that raced an `APPEND` is never cached.
    pub epoch: u64,
}

/// Tracks the GraphPool handles one session created, releasing them (and
/// running the cleaner) when dropped — the server's per-connection guard.
pub struct PoolSession {
    shared: SharedGraphManager,
    handles: Vec<GraphId>,
}

impl PoolSession {
    /// Overlays an already-computed snapshot, recording the handle against
    /// this session. Takes the write lock briefly.
    pub fn overlay(&mut self, snapshot: &Snapshot, t: Timestamp) -> GraphId {
        let id = self.shared.write().overlay_snapshot(snapshot, t);
        self.handles.push(id);
        id
    }

    /// Point retrieval through the shared snapshot cache: returns the
    /// snapshot as of `t`, whether it was served from the cache, and the
    /// append epoch it is consistent with (see [`CachedPoint`]).
    ///
    /// On a hit the session shares the cached pool overlay (its reference
    /// count goes up; no new overlay is built). On a miss the snapshot is
    /// computed under the shared read lock — concurrent sessions retrieve in
    /// parallel — then overlaid and cached under the write lock, with a
    /// re-probe in between so two sessions racing on the same `(t, opts)`
    /// still end up sharing one overlay. Either way the handle is recorded
    /// against this session and released (one reference) when the session
    /// drops. With the cache disabled (capacity 0) this is exactly the old
    /// compute-then-overlay path.
    pub fn retrieve_cached(&mut self, t: Timestamp, opts: &AttrOptions) -> DgResult<CachedPoint> {
        if !self.shared.cache_enabled() {
            // Plain path, exactly as before the cache existed: compute under
            // the read lock, overlay under the write lock, no extra probes.
            let (snapshot, epoch) = {
                let gm = self.shared.read();
                let snapshot = Arc::new(gm.index().get_snapshot(t, opts)?);
                (snapshot, gm.append_epoch())
            };
            let id = self.shared.write().overlay_snapshot(&snapshot, t);
            self.handles.push(id);
            return Ok(CachedPoint {
                snapshot,
                cache_hit: false,
                epoch,
            });
        }
        // Fast path: a hit is a refcount bump under a brief write lock. The
        // epoch is read under the same guard — a cached entry is always
        // consistent with the epoch observed while holding the lock,
        // because appends (which bump it) also invalidate under it.
        {
            let mut gm = self.shared.write();
            if let Some((snap, id)) = gm.cache_acquire(t, opts, true) {
                let epoch = gm.append_epoch();
                drop(gm);
                self.handles.push(id);
                return Ok(CachedPoint {
                    snapshot: snap,
                    cache_hit: true,
                    epoch,
                });
            }
        }
        // Miss: the expensive DeltaGraph traversal runs under the read
        // lock. The append epoch is read under the same guard, so it is
        // exactly the history the snapshot saw.
        let (snapshot, epoch) = {
            let gm = self.shared.read();
            let snapshot = Arc::new(gm.index().get_snapshot(t, opts)?);
            (snapshot, gm.append_epoch())
        };
        let mut gm = self.shared.write();
        // Double-check: another session may have cached (t, opts) while we
        // computed. Counted as neither hit nor miss — this lookup already
        // recorded its miss above.
        if let Some((snap, id)) = gm.cache_acquire(t, opts, false) {
            let epoch = gm.append_epoch();
            drop(gm);
            self.handles.push(id);
            return Ok(CachedPoint {
                snapshot: snap,
                cache_hit: true,
                epoch,
            });
        }
        // If an append landed between our compute and this insert, the
        // manager declines to cache the (possibly stale) snapshot and
        // hands back a plain session-owned overlay.
        let id = gm.cache_insert_overlay(&snapshot, t, opts, epoch);
        drop(gm);
        self.handles.push(id);
        Ok(CachedPoint {
            snapshot,
            cache_hit: false,
            epoch,
        })
    }

    /// Cache-only point acquisition: on a hit the session shares the cached
    /// overlay (its reference count goes up) and the materialized snapshot
    /// is returned; on a miss nothing is computed or inserted — the caller
    /// retrieves however it prefers (e.g. the Steiner multipoint planner).
    /// Hits and misses both count toward the cache statistics. `None`
    /// without locking when the cache is disabled.
    ///
    /// This is the probe half of [`PoolSession::retrieve_cached`], used by
    /// queries that want overlay sharing for hot points without letting a
    /// wide cold scan (multipoint over many distinct times) evict the hot
    /// set by force-inserting every point.
    pub fn acquire_cached(&mut self, t: Timestamp, opts: &AttrOptions) -> Option<Arc<Snapshot>> {
        if !self.shared.cache_enabled() {
            return None;
        }
        let (snapshot, id) = self.shared.write().cache_acquire(t, opts, true)?;
        self.handles.push(id);
        Some(snapshot)
    }

    /// Handles created by this session, in creation order.
    pub fn handles(&self) -> &[GraphId] {
        &self.handles
    }

    /// Releases every handle this session created, runs the cleaner, and
    /// returns how many were released. Called automatically on drop.
    pub fn release_now(&mut self) -> usize {
        if self.handles.is_empty() {
            return 0;
        }
        let released = self.handles.len();
        let mut gm = self.shared.write();
        for id in self.handles.drain(..) {
            gm.release(id);
        }
        gm.cleanup();
        released
    }

    /// The shared manager this session runs against.
    pub fn shared(&self) -> &SharedGraphManager {
        &self.shared
    }
}

impl Drop for PoolSession {
    fn drop(&mut self) {
        self.release_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphManagerConfig;
    use datagen::toy_trace;
    use std::thread;

    fn shared() -> SharedGraphManager {
        let gm = GraphManager::build_in_memory(&toy_trace().events, GraphManagerConfig::default())
            .unwrap();
        SharedGraphManager::new(gm)
    }

    #[test]
    fn concurrent_readers_agree_with_direct_retrieval() {
        let sm = shared();
        let ds = toy_trace();
        let workers: Vec<_> = [3i64, 6, 9, 10]
            .into_iter()
            .map(|t| {
                let sm = sm.clone();
                let expected = ds.snapshot_at(Timestamp(t));
                thread::spawn(move || {
                    for _ in 0..20 {
                        let snap = sm.snapshot_at(Timestamp(t), &AttrOptions::all()).unwrap();
                        assert_eq!(snap, expected);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn session_overlays_release_on_drop() {
        let sm = shared();
        {
            let mut session = sm.session();
            let snap = sm.snapshot_at(Timestamp(6), &AttrOptions::all()).unwrap();
            let id = session.overlay(&snap, Timestamp(6));
            assert_eq!(session.handles(), &[id]);
            assert_eq!(sm.read().pool().active_overlay_count(), 1);
        }
        assert_eq!(sm.read().pool().active_overlay_count(), 0);
    }

    fn shared_cached(capacity: usize) -> SharedGraphManager {
        let gm = GraphManager::build_in_memory(
            &toy_trace().events,
            GraphManagerConfig::default().with_snapshot_cache(capacity),
        )
        .unwrap();
        SharedGraphManager::new(gm)
    }

    #[test]
    fn cached_retrievals_share_one_overlay_across_sessions() {
        let sm = shared_cached(8);
        let opts = AttrOptions::all();
        let mut s1 = sm.session();
        let mut s2 = sm.session();
        let p1 = s1.retrieve_cached(Timestamp(6), &opts).unwrap();
        let p2 = s2.retrieve_cached(Timestamp(6), &opts).unwrap();
        assert!(!p1.cache_hit, "first retrieval must miss");
        assert!(p2.cache_hit, "second retrieval must hit");
        assert_eq!(p1.epoch, p2.epoch);
        assert_eq!(*p1.snapshot, *p2.snapshot);
        // exactly one overlay, shared: cache ref + one per session
        assert_eq!(sm.read().pool().active_overlay_count(), 1);
        let id = s1.handles()[0];
        assert_eq!(s2.handles(), &[id]);
        assert_eq!(sm.read().pool().refcount(id), Some(3));
        drop(s1);
        assert_eq!(sm.read().pool().refcount(id), Some(2));
        drop(s2);
        // both sessions gone: the cache keeps the overlay warm
        assert_eq!(sm.read().pool().refcount(id), Some(1));
        assert_eq!(sm.read().pool().active_overlay_count(), 1);
        let stats = sm.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn append_invalidates_cached_snapshots_at_or_after_the_event() {
        let sm = shared_cached(8);
        let opts = AttrOptions::all();
        let mut session = sm.session();
        session.retrieve_cached(Timestamp(6), &opts).unwrap();
        session.retrieve_cached(Timestamp(25), &opts).unwrap();
        assert_eq!(sm.read().cache_len(), 2);
        sm.append_event(Event::add_node(20, 777)).unwrap();
        // t=25 (>= 20) invalidated, t=6 (< 20) still cached
        assert_eq!(sm.read().cache_len(), 1);
        let hit = session.retrieve_cached(Timestamp(6), &opts).unwrap();
        assert!(hit.cache_hit);
        // a fresh retrieval at 25 sees the appended node, under the bumped
        // append epoch
        let point = session.retrieve_cached(Timestamp(25), &opts).unwrap();
        assert!(!point.cache_hit);
        assert_eq!(point.epoch, 1);
        assert!(point.snapshot.has_node(tgraph::NodeId(777)));
        assert_eq!(sm.cache_stats().invalidations, 1);
    }

    #[test]
    fn cached_overlays_are_immune_to_appends_even_with_dependent_overlays_on() {
        // Cached overlays must be self-contained: a dependent overlay's view
        // follows its dependency (the current graph), so caching one would
        // let an append silently corrupt entries *before* the append point —
        // exactly the entries invalidation keeps.
        let gm = GraphManager::build_in_memory(
            &toy_trace().events,
            GraphManagerConfig {
                dependent_overlays: true,
                ..GraphManagerConfig::default().with_snapshot_cache(8)
            },
        )
        .unwrap();
        let sm = SharedGraphManager::new(gm);
        let mut session = sm.session();
        let opts = AttrOptions::all();
        let snap = session
            .retrieve_cached(Timestamp(10), &opts)
            .unwrap()
            .snapshot;
        let id = session.handles()[0];
        sm.append_event(Event::add_node(20, 777)).unwrap();
        // The t=10 entry survives the append (10 < 20) and its pool view
        // must still equal the snapshot it was built from — no phantom 777.
        {
            let gm = sm.read();
            assert_eq!(gm.cache_len(), 1);
            assert!(!gm.graph(id).has_node(tgraph::NodeId(777)));
            assert_eq!(gm.graph(id).to_snapshot(), *snap);
        }
        // And a cache hit hands other sessions the same clean view.
        let mut other = sm.session();
        let p2 = other.retrieve_cached(Timestamp(10), &opts).unwrap();
        assert!(p2.cache_hit);
        assert!(!p2.snapshot.has_node(tgraph::NodeId(777)));
    }

    #[test]
    fn snapshot_that_raced_an_append_is_not_cached() {
        let sm = shared_cached(8);
        let opts = AttrOptions::all();
        // Replay retrieve_cached's miss path by hand with an append landing
        // between the compute and the insert: the pre-append snapshot must
        // not enter the cache (it would serve stale reads at t>=20 forever).
        let (stale, epoch) = {
            let gm = sm.read();
            let snap = Arc::new(gm.index().get_snapshot(Timestamp(25), &opts).unwrap());
            (snap, gm.append_epoch())
        };
        sm.append_event(Event::add_node(20, 777)).unwrap();
        let id = sm
            .write()
            .cache_insert_overlay(&stale, Timestamp(25), &opts, epoch);
        assert_eq!(
            sm.read().cache_len(),
            0,
            "stale snapshot must not be cached"
        );
        // The caller still got a plain session-owned overlay (refs = 1).
        assert_eq!(sm.read().pool().refcount(id), Some(1));
        // A fresh retrieval computes post-append state and caches that.
        let mut session = sm.session();
        let point = session.retrieve_cached(Timestamp(25), &opts).unwrap();
        assert!(!point.cache_hit);
        assert!(point.snapshot.has_node(tgraph::NodeId(777)));
        assert_eq!(sm.read().cache_len(), 1);
    }

    #[test]
    fn disabled_cache_keeps_per_session_overlays() {
        let sm = shared_cached(0);
        let opts = AttrOptions::all();
        let mut s1 = sm.session();
        let mut s2 = sm.session();
        let h1 = s1.retrieve_cached(Timestamp(6), &opts).unwrap().cache_hit;
        let h2 = s2.retrieve_cached(Timestamp(6), &opts).unwrap().cache_hit;
        assert!(!h1 && !h2);
        // no sharing: one overlay per session, gone when the sessions drop
        assert_eq!(sm.read().pool().active_overlay_count(), 2);
        drop(s1);
        drop(s2);
        assert_eq!(sm.read().pool().active_overlay_count(), 0);
        assert_eq!(sm.cache_stats(), crate::CacheStats::default());
    }

    #[test]
    fn repeated_retrievals_in_one_session_release_cleanly() {
        let sm = shared_cached(4);
        let opts = AttrOptions::all();
        let mut session = sm.session();
        for _ in 0..3 {
            session.retrieve_cached(Timestamp(6), &opts).unwrap();
        }
        let id = session.handles()[0];
        assert_eq!(session.handles(), &[id, id, id]);
        assert_eq!(sm.read().pool().refcount(id), Some(4)); // cache + 3 holds
        assert_eq!(session.release_now(), 3);
        assert_eq!(sm.read().pool().refcount(id), Some(1));
    }

    #[test]
    fn appends_are_visible_to_subsequent_reads() {
        let sm = shared();
        sm.append_event(Event::add_node(20, 777)).unwrap();
        let snap = sm.snapshot_at(Timestamp(20), &AttrOptions::all()).unwrap();
        assert!(snap.has_node(tgraph::NodeId(777)));
    }
}
