//! Adapter exposing the DeltaGraph through the baselines' common
//! [`SnapshotSource`] trait, so benchmarks compare all approaches uniformly.

use baselines::SnapshotSource;
use deltagraph::DeltaGraph;
use tgraph::{AttrOptions, Snapshot, TgError, Timestamp};

/// Wraps a [`DeltaGraph`] as a [`SnapshotSource`].
pub struct DeltaGraphSource<'a> {
    index: &'a DeltaGraph,
}

impl<'a> DeltaGraphSource<'a> {
    /// Wraps an index.
    pub fn new(index: &'a DeltaGraph) -> Self {
        DeltaGraphSource { index }
    }
}

impl SnapshotSource for DeltaGraphSource<'_> {
    fn snapshot_at(&self, t: Timestamp, opts: &AttrOptions) -> tgraph::Result<Snapshot> {
        self.index
            .get_snapshot(t, opts)
            .map_err(|e| TgError::Internal(e.to_string()))
    }

    fn source_name(&self) -> &'static str {
        "deltagraph"
    }

    fn storage_bytes(&self) -> u64 {
        self.index.stats().stored_bytes
    }

    fn memory_bytes(&self) -> usize {
        self.index.stats().materialized_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deltagraph::DeltaGraphConfig;
    use std::sync::Arc;

    #[test]
    fn adapter_matches_direct_queries() {
        let ds = datagen::toy_trace();
        let dg = DeltaGraph::build(
            &ds.events,
            DeltaGraphConfig::new(3, 2),
            Arc::new(kvstore::MemStore::new()),
        )
        .unwrap();
        let source = DeltaGraphSource::new(&dg);
        assert_eq!(source.source_name(), "deltagraph");
        assert!(source.storage_bytes() > 0);
        for t in [2, 6, 10] {
            assert_eq!(
                source
                    .snapshot_at(Timestamp(t), &AttrOptions::all())
                    .unwrap(),
                ds.snapshot_at(Timestamp(t))
            );
        }
    }
}
