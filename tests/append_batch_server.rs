//! End-to-end atomic-visibility tests for `APPEND BATCH` over the TCP
//! servers: a writer streams multi-event batches while concurrent readers
//! poll `GET GRAPH AT t` (text and binary protocol) and must never observe
//! a partial batch — every reply reflects a whole number of batches.
//!
//! Covers both serving cores (the event-driven core via [`serve`] /
//! [`serve_sharded`] and the thread-per-connection core via
//! [`serve_threaded`]) plus the sharded router with a small shard budget so
//! batches trigger tail rolls while readers are polling.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use historygraph::{
    GraphManager, GraphManagerConfig, ShardedConfig, ShardedGraphManager, SharedGraphManager,
};
use histql::{Frame, Response};
use server::{serve, serve_sharded, serve_threaded, Client, ServerConfig, ServerHandle};
use tgraph::{Event, EventList};

/// In-process servers bind real sockets; serialize the tests so they don't
/// contend for file descriptors or CPU under `cargo test`'s parallelism.
static SERIAL: Mutex<()> = Mutex::new(());

/// Shape of every batch the writer sends: the invariant the readers check
/// is that the node/edge deltas over the base graph always correspond to a
/// whole number of these batches.
const NODES_PER_BATCH: u64 = 3;
const EDGES_PER_BATCH: u64 = 2;
const BATCHES: u64 = 32;
/// Probe time: at or after every batch's timestamp, so each applied batch
/// is visible to the reader the moment it commits.
const PROBE: u64 = 1_000_000;

/// Base events: a handful of pre-existing nodes so the readers' deltas
/// start from a known floor.
fn base_events() -> EventList {
    EventList::from_events(
        (1..=8)
            .map(|i| Event::add_node(i, 100 + i as u64))
            .collect(),
    )
}

fn manager_config() -> GraphManagerConfig {
    GraphManagerConfig::default()
        .with_snapshot_cache(8)
        .with_response_cache(8)
}

/// One multi-event batch: three nodes plus two edges among them, all at one
/// timestamp. A torn batch would surface as a node delta that is not a
/// multiple of three, or an edge delta inconsistent with the node delta.
fn batch_line(b: u64) -> String {
    let t = 1_000 + b;
    let n0 = 10_000 + b * 10;
    let (n1, n2) = (n0 + 1, n0 + 2);
    let (e0, e1) = (50_000 + b * 10, 50_000 + b * 10 + 1);
    format!(
        "APPEND BATCH NODE {t} {n0} ; NODE {t} {n1} ; NODE {t} {n2} ; \
         EDGE {t} {e0} {n0} {n1} ; EDGE {t} {e1} {n1} {n2}"
    )
}

/// Asserts the node/edge counts of one observed snapshot reflect a whole
/// number of applied batches over the base graph.
fn check_whole_batches(nodes: u64, edges: u64, base_nodes: u64, base_edges: u64, ctx: &str) {
    let dn = nodes
        .checked_sub(base_nodes)
        .unwrap_or_else(|| panic!("{ctx}: node count {nodes} below base {base_nodes}"));
    let de = edges
        .checked_sub(base_edges)
        .unwrap_or_else(|| panic!("{ctx}: edge count {edges} below base {base_edges}"));
    assert!(
        dn.is_multiple_of(NODES_PER_BATCH),
        "{ctx}: observed a partial batch: node delta {dn} is not a multiple of {NODES_PER_BATCH}"
    );
    assert_eq!(
        de,
        dn / NODES_PER_BATCH * EDGES_PER_BATCH,
        "{ctx}: observed a partial batch: edge delta {de} inconsistent with node delta {dn}"
    );
}

/// Parses `nodes=` / `edges=` out of an `OK GRAPH ...` header line.
fn header_counts(line: &str) -> (u64, u64) {
    let field = |name: &str| {
        line.split_whitespace()
            .find_map(|kv| kv.strip_prefix(name))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {name} in {line:?}"))
    };
    (field("nodes="), field("edges="))
}

/// Runs the scenario against an already-listening server: one writer client
/// streaming batches, one text reader and one binary reader polling the same
/// probe time throughout. Returns once the writer has appended every batch
/// and both readers have confirmed the final state.
fn hammer(server: &ServerHandle) {
    let addr = server.addr();
    let mut probe = Client::connect(addr).unwrap();
    let reply = probe.send_ok(&format!("GET GRAPH AT {PROBE}")).unwrap();
    let (base_nodes, base_edges) = header_counts(&reply[0]);
    probe.quit();

    let done = Arc::new(AtomicBool::new(false));
    let spawn_reader = |binary: bool| {
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            if binary {
                client.binary().unwrap();
            }
            let ctx = if binary {
                "binary reader"
            } else {
                "text reader"
            };
            let mut polls = 0u64;
            let mut last = (0, 0);
            while !done.load(Ordering::Acquire) || last.0 < base_nodes + BATCHES * NODES_PER_BATCH {
                let query = format!("GET GRAPH AT {PROBE}");
                last = if binary {
                    match client.send_binary(&query).unwrap() {
                        Frame::Response(Response::Graph { graph, .. }) => {
                            (graph.node_count() as u64, graph.edge_count() as u64)
                        }
                        other => panic!("{ctx}: unexpected frame {other:?}"),
                    }
                } else {
                    header_counts(&client.send_ok(&query).unwrap()[0])
                };
                check_whole_batches(last.0, last.1, base_nodes, base_edges, ctx);
                polls += 1;
            }
            polls
        })
    };
    let text_reader = spawn_reader(false);
    let binary_reader = spawn_reader(true);

    let mut writer = Client::connect(addr).unwrap();
    for b in 0..BATCHES {
        let reply = writer.send_ok(&batch_line(b)).unwrap();
        assert!(
            reply[0].starts_with(&format!(
                "OK APPENDED BATCH count={NODES_PER_BATCH} normalized=0",
                NODES_PER_BATCH = NODES_PER_BATCH + EDGES_PER_BATCH
            )),
            "unexpected batch ack: {:?}",
            reply[0]
        );
    }
    done.store(true, Ordering::Release);
    writer.quit();

    for reader in [text_reader, binary_reader] {
        let polls = reader.join().unwrap();
        assert!(polls > 0, "reader never polled");
    }
}

fn in_memory_shared() -> SharedGraphManager {
    let gm = GraphManager::build_in_memory(&base_events(), manager_config()).unwrap();
    SharedGraphManager::new(gm)
}

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_connections: 8,
        ..Default::default()
    }
}

/// Event-driven core: readers on both protocols never see a torn batch.
#[test]
fn event_core_readers_never_observe_partial_batches() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut server = serve(in_memory_shared(), config()).unwrap();
    hammer(&server);
    server.shutdown();
}

/// Thread-per-connection core: same invariant.
#[test]
fn threaded_core_readers_never_observe_partial_batches() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut server = serve_threaded(in_memory_shared(), config()).unwrap();
    hammer(&server);
    server.shutdown();
}

/// Sharded router with a tiny shard budget: batches force tail rolls while
/// the readers are polling, and each batch still lands whole.
#[test]
fn sharded_router_rolls_tails_without_tearing_batches() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let router = ShardedGraphManager::build_in_memory(
        &base_events(),
        ShardedConfig::default()
            .with_shards(2)
            .with_shard_events(16)
            .with_manager(manager_config()),
    )
    .unwrap();
    let mut server = serve_sharded(router.clone(), config()).unwrap();
    hammer(&server);
    // Every batch is anchored to one shard: its first and last event resolve
    // to the same shard even after the rolls the writer provoked.
    for b in 0..BATCHES {
        let t = tgraph::Timestamp(1_000 + b as i64);
        assert_eq!(
            router.shard_index_for(t),
            router.shard_index_for(t),
            "batch at t={t:?} straddles shards"
        );
    }
    server.shutdown();
}

/// A hand-built ill-formed batch pushed through the wire: deleting an
/// attributed node (and an attributed edge) without clearing first. The
/// boundary must normalize it — the ack reports the injected clearing
/// events and the snapshot afterwards shows the deletions took effect.
#[test]
fn ill_formed_batch_over_the_wire_is_normalized() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut server = serve(in_memory_shared(), config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    client
        .send_ok("APPEND BATCH NODE 500 50 ; NODEATTR 500 50 name \"x\" ; NODE 500 51 ; EDGE 500 70 50 51 ; EDGEATTR 500 70 w 7")
        .unwrap();
    // Ill-formed: the edge and node both still carry attributes (and the
    // node an incident edge) when deleted.
    let reply = client
        .send_ok("APPEND BATCH DELEDGE 501 70 50 51 ; DELNODE 501 50")
        .unwrap();
    let ack = &reply[0];
    assert!(
        ack.starts_with("OK APPENDED BATCH"),
        "unexpected ack: {ack:?}"
    );
    let normalized: u64 = ack
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("normalized="))
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert!(
        normalized > 0,
        "boundary did not inject clearing events: {ack:?}"
    );

    let after = client.send_ok("GET GRAPH AT 502").unwrap();
    let (nodes, edges) = header_counts(&after[0]);
    assert_eq!((nodes, edges), (8 + 1, 0), "deletions did not take effect");
    client.quit();
    server.shutdown();
}
