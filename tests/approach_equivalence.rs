//! Every snapshot-retrieval approach — DeltaGraph (all differential
//! functions), Copy+Log, naive Log, and the interval tree — must return
//! byte-for-byte identical snapshots for identical queries. This is the
//! cross-cutting invariant behind every comparison figure in the paper.

use std::sync::Arc;

use historygraph::baselines::{CopyLog, IntervalTree, NaiveLog, SnapshotSource};
use historygraph::datagen::{churn_trace, uniform_timepoints, ChurnConfig};
use historygraph::deltagraph::{DeltaGraph, DeltaGraphConfig, DifferentialFunction};
use historygraph::kvstore::MemStore;
use historygraph::tgraph::{AttrOptions, Event, Timestamp};
use historygraph::{
    DeltaGraphSource, GraphManager, GraphManagerConfig, ShardedConfig, ShardedGraphManager,
};
use proptest::prelude::*;

#[test]
fn all_approaches_return_identical_snapshots() {
    let ds = churn_trace(&ChurnConfig::tiny(201));
    let times = uniform_timepoints(ds.start_time(), ds.end_time(), 9);

    let log = NaiveLog::new(ds.events.clone());
    let copylog = CopyLog::build(&ds.events, 100, Arc::new(MemStore::new())).unwrap();
    let tree = IntervalTree::build(&ds.events);

    let mut deltagraphs = Vec::new();
    for f in [
        DifferentialFunction::Intersection,
        DifferentialFunction::Balanced,
        DifferentialFunction::Mixed { r1: 0.9, r2: 0.1 },
        DifferentialFunction::Empty,
    ] {
        deltagraphs.push(
            DeltaGraph::build(
                &ds.events,
                DeltaGraphConfig::new(90, 3).with_diff_fn(f),
                Arc::new(MemStore::new()),
            )
            .unwrap(),
        );
    }

    for opts in [AttrOptions::all(), AttrOptions::structure_only()] {
        for &t in &times {
            let reference = log.snapshot_at(t, &opts).unwrap();
            assert_eq!(
                copylog.snapshot_at(t, &opts).unwrap(),
                reference,
                "copy+log t={t}"
            );
            assert_eq!(
                tree.snapshot_at(t, &opts).unwrap(),
                reference,
                "interval tree t={t}"
            );
            for dg in &deltagraphs {
                let source = DeltaGraphSource::new(dg);
                assert_eq!(
                    source.snapshot_at(t, &opts).unwrap(),
                    reference,
                    "deltagraph {} t={t}",
                    dg.config().diff_fn.name()
                );
            }
        }
    }
}

proptest! {
    /// The sharded serving layer extends the cross-approach invariant: for
    /// random event streams, random shard boundaries (explicit or
    /// equi-width), and a random roll budget, `ShardedGraphManager`
    /// snapshots are node/edge/attribute-identical to a single
    /// `GraphManager` replaying the same stream — across the built history,
    /// at and around every shard boundary, and through live appends that
    /// roll new tail shards.
    #[test]
    fn prop_sharded_router_matches_single_manager_replay(
        seed in 0u64..6,
        shard_count in 1usize..6,
        fracs in proptest::collection::vec(1u64..100, 0..4),
        budget in 0usize..12,
    ) {
        let ds = churn_trace(&ChurnConfig::tiny(500 + seed));
        let start = ds.start_time().raw();
        let end = ds.end_time().raw();
        let span = (end - start).max(1);
        let base = if fracs.is_empty() {
            ShardedConfig::default().with_shards(shard_count)
        } else {
            let bounds: Vec<Timestamp> = fracs
                .iter()
                .map(|&f| Timestamp(start + span * f as i64 / 100))
                .collect();
            ShardedConfig::default().with_boundaries(bounds)
        };
        let sharded =
            ShardedGraphManager::build_in_memory(&ds.events, base.with_shard_events(budget))
                .unwrap();
        let mut single =
            GraphManager::build_in_memory(&ds.events, GraphManagerConfig::default()).unwrap();

        // Probe times: a uniform spread plus every shard boundary and its
        // neighbours (the seams the seeding logic must get right).
        let mut times: Vec<Timestamp> =
            uniform_timepoints(ds.start_time(), ds.end_time(), 7);
        for info in sharded.shard_infos() {
            if let Some(lower) = info.lower {
                times.extend([lower.prev(), lower, lower.next()]);
            }
        }
        let compare = |sharded: &ShardedGraphManager, single: &GraphManager, times: &[Timestamp]| {
            for opts in [AttrOptions::all(), AttrOptions::structure_only()] {
                for &t in times {
                    let got = sharded.snapshot_at(t, &opts).unwrap();
                    let want = single.index().get_snapshot(t, &opts).unwrap();
                    assert_eq!(got, want, "t={} opts={}", t.raw(), opts.canonical_string());
                }
            }
        };
        compare(&sharded, &single, &times);

        // Live appends land on the tail (rolling new shards under small
        // budgets) and must stay equivalent, including around the rolls.
        let mut append_times = Vec::new();
        for i in 0..15i64 {
            let t = end + 1 + i;
            let node = 900_000 + i as u64;
            let ev = Event::add_node(t, node);
            sharded.append_event(ev.clone()).unwrap();
            single.append_event(ev).unwrap();
            let attr = Event::set_node_attr(
                t,
                node,
                "w",
                None,
                Some(historygraph::tgraph::AttrValue::Int(i)),
            );
            sharded.append_event(attr.clone()).unwrap();
            single.append_event(attr).unwrap();
            append_times.push(Timestamp(t));
        }
        compare(&sharded, &single, &times);
        compare(&sharded, &single, &append_times);
    }
}

proptest! {
    /// `APPEND BATCH` extends the invariant to transactional ingest: for
    /// random roll budgets and batch shapes, a sharded router applying
    /// whole batches (each routed to the tail as a unit, rolling at most
    /// one new shard per batch) stays snapshot-identical to a single
    /// manager applying the same batches — including batches whose arrival
    /// triggers a tail roll, and batches that carry ill-formed deletes the
    /// §3.1 boundary must normalize identically on both sides.
    #[test]
    fn prop_sharded_batches_match_single_manager_across_rolls(
        seed in 0u64..4,
        shard_count in 1usize..4,
        budget in 0usize..8,
        batches in 1usize..6,
        batch_len in 1usize..5,
    ) {
        use historygraph::tgraph::AttrValue;

        let ds = churn_trace(&ChurnConfig::tiny(700 + seed));
        let end = ds.end_time().raw();
        let sharded = ShardedGraphManager::build_in_memory(
            &ds.events,
            ShardedConfig::default()
                .with_shards(shard_count)
                .with_shard_events(budget),
        )
        .unwrap();
        let mut single =
            GraphManager::build_in_memory(&ds.events, GraphManagerConfig::default()).unwrap();

        let mut t = end;
        let mut probe_times = Vec::new();
        for b in 0..batches as i64 {
            // Each batch: a node birth, an attribute write, and (for the
            // later batches) an ill-formed delete of the previous batch's
            // still-attributed node — exercising normalization inside the
            // atomic unit on both the sharded and the single path.
            let node = 910_000 + b as u64;
            let mut batch = Vec::new();
            for k in 0..batch_len as i64 {
                t += 1;
                batch.push(match k % 3 {
                    0 => Event::add_node(t, node + 1000 * k as u64),
                    1 => Event::set_node_attr(
                        t,
                        node,
                        "w",
                        None,
                        Some(AttrValue::Int(b * 100 + k)),
                    ),
                    _ => Event::delete_node(t, node + 1000 * (k - 2) as u64),
                });
            }
            let got = sharded.append_batch(batch.clone()).unwrap();
            let want = single.append_batch(batch).unwrap();
            assert_eq!(got.applied, want.applied, "batch {b} applied count");
            assert_eq!(got.normalized, want.normalized, "batch {b} normalization");
            // The whole batch landed in one shard: its time span never
            // straddles a shard boundary.
            assert_eq!(
                sharded.shard_index_for(got.t_min),
                sharded.shard_index_for(got.t_max),
                "batch {b} straddles shards"
            );
            probe_times.extend([got.t_min, got.t_max]);
        }
        for opts in [AttrOptions::all(), AttrOptions::structure_only()] {
            for &pt in &probe_times {
                let got = sharded.snapshot_at(pt, &opts).unwrap();
                let want = single.index().get_snapshot(pt, &opts).unwrap();
                assert_eq!(got, want, "t={} opts={}", pt.raw(), opts.canonical_string());
            }
        }
    }
}

proptest! {
    /// Durable recovery extends the invariant to crashes: for random
    /// streams, shard layouts, roll budgets, live appends, and a random
    /// kill point (the WAL torn at an arbitrary byte offset), a recovered
    /// router must answer point retrievals identically to an in-memory
    /// manager replaying the surviving prefix of the stream. The prefix is
    /// computed independently from the WAL's record framing, so this also
    /// pins *which* events must survive a given tear.
    #[test]
    fn prop_recovered_router_matches_in_memory_over_surviving_prefix(
        seed in 0u64..4,
        shard_count in 1usize..4,
        budget in 0usize..10,
        appends in 1usize..12,
        cut_frac in 0u64..101,
    ) {
        use historygraph::kvstore::{read_wal_events, wal_record_len};
        use historygraph::WalSyncPolicy;

        let dir = std::env::temp_dir().join(format!(
            "recovery-equivalence-{}-{seed}-{shard_count}-{budget}-{appends}-{cut_frac}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        let ds = churn_trace(&ChurnConfig::tiny(900 + seed));
        let end = ds.end_time().raw();
        let config = ShardedConfig::default()
            .with_shards(shard_count)
            .with_shard_events(budget);
        let durable = ShardedGraphManager::build_durable(
            &ds.events,
            config.clone(),
            &dir,
            WalSyncPolicy::Off,
        )
        .unwrap();
        let mut all_events: Vec<Event> = ds.events.events().to_vec();
        for i in 0..appends as i64 {
            let ev = Event::add_node(end + 1 + i, 900_000 + i as u64);
            durable.append_event(ev.clone()).unwrap();
            all_events.push(ev);
        }
        drop(durable); // the "crash": no shutdown hook runs

        // Tear the tail WAL at cut_frac% of its length and compute, purely
        // from record framing, which suffix of the stream that destroys:
        // the tail WAL holds the newest events, so losing its last records
        // loses exactly the stream's tail.
        let wal = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| {
                p.extension().is_some_and(|x| x == "log")
                    && p.file_name().is_some_and(|f| f != "keys.log")
            })
            .expect("tail wal");
        let tail_events = read_wal_events(&wal).unwrap();
        let full_len = std::fs::metadata(&wal).unwrap().len();
        let cut = full_len * cut_frac / 100;
        let mut offset = 0u64;
        let mut surviving_tail = 0usize;
        for ev in &tail_events {
            offset += wal_record_len(ev);
            if offset > cut {
                break;
            }
            surviving_tail += 1;
        }
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let dropped = tail_events.len() - surviving_tail;
        let surviving = &all_events[..all_events.len() - dropped];

        if surviving.is_empty() {
            // Nothing survived anywhere (single shard, WAL fully gone):
            // recovery must refuse rather than serve an empty history.
            assert!(ShardedGraphManager::open(&dir, config, WalSyncPolicy::Off).is_err());
        } else {
            let recovered =
                ShardedGraphManager::open(&dir, config, WalSyncPolicy::Off).unwrap();
            let oracle = GraphManager::build_in_memory(
                &historygraph::tgraph::EventList::from_events(surviving.to_vec()),
                GraphManagerConfig::default(),
            )
            .unwrap();

            let last = surviving.last().unwrap().time;
            let mut times: Vec<Timestamp> =
                uniform_timepoints(ds.start_time(), last, 7);
            times.push(last);
            for info in recovered.shard_infos() {
                if let Some(lower) = info.lower {
                    times.extend([lower.prev(), lower, lower.next()]);
                }
            }
            for opts in [AttrOptions::all(), AttrOptions::structure_only()] {
                for &t in &times {
                    let got = recovered.snapshot_at(t, &opts).unwrap();
                    let want = oracle.index().get_snapshot(t, &opts).unwrap();
                    assert_eq!(got, want, "t={} opts={}", t.raw(), opts.canonical_string());
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn storage_footprints_are_reported_and_ordered_sensibly() {
    let ds = churn_trace(&ChurnConfig::tiny(203));

    let copylog = CopyLog::build(&ds.events, 100, Arc::new(MemStore::new())).unwrap();
    let dg = DeltaGraph::build(
        &ds.events,
        DeltaGraphConfig::new(100, 2).with_diff_fn(DifferentialFunction::Intersection),
        Arc::new(MemStore::new()),
    )
    .unwrap();
    let tree = IntervalTree::build(&ds.events);

    // Copy+Log stores full snapshots and must use more disk than the
    // Intersection DeltaGraph at the same leaf granularity.
    let dg_source = DeltaGraphSource::new(&dg);
    assert!(copylog.storage_bytes() > dg_source.storage_bytes());
    // The interval tree is an in-memory structure.
    assert_eq!(tree.storage_bytes(), 0);
    assert!(tree.memory_bytes() > 0);
}
