//! Every snapshot-retrieval approach — DeltaGraph (all differential
//! functions), Copy+Log, naive Log, and the interval tree — must return
//! byte-for-byte identical snapshots for identical queries. This is the
//! cross-cutting invariant behind every comparison figure in the paper.

use std::sync::Arc;

use historygraph::baselines::{CopyLog, IntervalTree, NaiveLog, SnapshotSource};
use historygraph::datagen::{churn_trace, uniform_timepoints, ChurnConfig};
use historygraph::deltagraph::{DeltaGraph, DeltaGraphConfig, DifferentialFunction};
use historygraph::kvstore::MemStore;
use historygraph::tgraph::{AttrOptions, Event, Timestamp};
use historygraph::{
    DeltaGraphSource, GraphManager, GraphManagerConfig, ShardedConfig, ShardedGraphManager,
};
use proptest::prelude::*;

#[test]
fn all_approaches_return_identical_snapshots() {
    let ds = churn_trace(&ChurnConfig::tiny(201));
    let times = uniform_timepoints(ds.start_time(), ds.end_time(), 9);

    let log = NaiveLog::new(ds.events.clone());
    let copylog = CopyLog::build(&ds.events, 100, Arc::new(MemStore::new())).unwrap();
    let tree = IntervalTree::build(&ds.events);

    let mut deltagraphs = Vec::new();
    for f in [
        DifferentialFunction::Intersection,
        DifferentialFunction::Balanced,
        DifferentialFunction::Mixed { r1: 0.9, r2: 0.1 },
        DifferentialFunction::Empty,
    ] {
        deltagraphs.push(
            DeltaGraph::build(
                &ds.events,
                DeltaGraphConfig::new(90, 3).with_diff_fn(f),
                Arc::new(MemStore::new()),
            )
            .unwrap(),
        );
    }

    for opts in [AttrOptions::all(), AttrOptions::structure_only()] {
        for &t in &times {
            let reference = log.snapshot_at(t, &opts).unwrap();
            assert_eq!(
                copylog.snapshot_at(t, &opts).unwrap(),
                reference,
                "copy+log t={t}"
            );
            assert_eq!(
                tree.snapshot_at(t, &opts).unwrap(),
                reference,
                "interval tree t={t}"
            );
            for dg in &deltagraphs {
                let source = DeltaGraphSource::new(dg);
                assert_eq!(
                    source.snapshot_at(t, &opts).unwrap(),
                    reference,
                    "deltagraph {} t={t}",
                    dg.config().diff_fn.name()
                );
            }
        }
    }
}

proptest! {
    /// The sharded serving layer extends the cross-approach invariant: for
    /// random event streams, random shard boundaries (explicit or
    /// equi-width), and a random roll budget, `ShardedGraphManager`
    /// snapshots are node/edge/attribute-identical to a single
    /// `GraphManager` replaying the same stream — across the built history,
    /// at and around every shard boundary, and through live appends that
    /// roll new tail shards.
    #[test]
    fn prop_sharded_router_matches_single_manager_replay(
        seed in 0u64..6,
        shard_count in 1usize..6,
        fracs in proptest::collection::vec(1u64..100, 0..4),
        budget in 0usize..12,
    ) {
        let ds = churn_trace(&ChurnConfig::tiny(500 + seed));
        let start = ds.start_time().raw();
        let end = ds.end_time().raw();
        let span = (end - start).max(1);
        let base = if fracs.is_empty() {
            ShardedConfig::default().with_shards(shard_count)
        } else {
            let bounds: Vec<Timestamp> = fracs
                .iter()
                .map(|&f| Timestamp(start + span * f as i64 / 100))
                .collect();
            ShardedConfig::default().with_boundaries(bounds)
        };
        let sharded =
            ShardedGraphManager::build_in_memory(&ds.events, base.with_shard_events(budget))
                .unwrap();
        let mut single =
            GraphManager::build_in_memory(&ds.events, GraphManagerConfig::default()).unwrap();

        // Probe times: a uniform spread plus every shard boundary and its
        // neighbours (the seams the seeding logic must get right).
        let mut times: Vec<Timestamp> =
            uniform_timepoints(ds.start_time(), ds.end_time(), 7);
        for info in sharded.shard_infos() {
            if let Some(lower) = info.lower {
                times.extend([lower.prev(), lower, lower.next()]);
            }
        }
        let compare = |sharded: &ShardedGraphManager, single: &GraphManager, times: &[Timestamp]| {
            for opts in [AttrOptions::all(), AttrOptions::structure_only()] {
                for &t in times {
                    let got = sharded.snapshot_at(t, &opts).unwrap();
                    let want = single.index().get_snapshot(t, &opts).unwrap();
                    assert_eq!(got, want, "t={} opts={}", t.raw(), opts.canonical_string());
                }
            }
        };
        compare(&sharded, &single, &times);

        // Live appends land on the tail (rolling new shards under small
        // budgets) and must stay equivalent, including around the rolls.
        let mut append_times = Vec::new();
        for i in 0..15i64 {
            let t = end + 1 + i;
            let node = 900_000 + i as u64;
            let ev = Event::add_node(t, node);
            sharded.append_event(ev.clone()).unwrap();
            single.append_event(ev).unwrap();
            let attr = Event::set_node_attr(
                t,
                node,
                "w",
                None,
                Some(historygraph::tgraph::AttrValue::Int(i)),
            );
            sharded.append_event(attr.clone()).unwrap();
            single.append_event(attr).unwrap();
            append_times.push(Timestamp(t));
        }
        compare(&sharded, &single, &times);
        compare(&sharded, &single, &append_times);
    }
}

#[test]
fn storage_footprints_are_reported_and_ordered_sensibly() {
    let ds = churn_trace(&ChurnConfig::tiny(203));

    let copylog = CopyLog::build(&ds.events, 100, Arc::new(MemStore::new())).unwrap();
    let dg = DeltaGraph::build(
        &ds.events,
        DeltaGraphConfig::new(100, 2).with_diff_fn(DifferentialFunction::Intersection),
        Arc::new(MemStore::new()),
    )
    .unwrap();
    let tree = IntervalTree::build(&ds.events);

    // Copy+Log stores full snapshots and must use more disk than the
    // Intersection DeltaGraph at the same leaf granularity.
    let dg_source = DeltaGraphSource::new(&dg);
    assert!(copylog.storage_bytes() > dg_source.storage_bytes());
    // The interval tree is an in-memory structure.
    assert_eq!(tree.storage_bytes(), 0);
    assert!(tree.memory_bytes() > 0);
}
