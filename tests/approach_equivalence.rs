//! Every snapshot-retrieval approach — DeltaGraph (all differential
//! functions), Copy+Log, naive Log, and the interval tree — must return
//! byte-for-byte identical snapshots for identical queries. This is the
//! cross-cutting invariant behind every comparison figure in the paper.

use std::sync::Arc;

use historygraph::baselines::{CopyLog, IntervalTree, NaiveLog, SnapshotSource};
use historygraph::datagen::{churn_trace, uniform_timepoints, ChurnConfig};
use historygraph::deltagraph::{DeltaGraph, DeltaGraphConfig, DifferentialFunction};
use historygraph::kvstore::MemStore;
use historygraph::tgraph::AttrOptions;
use historygraph::DeltaGraphSource;

#[test]
fn all_approaches_return_identical_snapshots() {
    let ds = churn_trace(&ChurnConfig::tiny(201));
    let times = uniform_timepoints(ds.start_time(), ds.end_time(), 9);

    let log = NaiveLog::new(ds.events.clone());
    let copylog = CopyLog::build(&ds.events, 100, Arc::new(MemStore::new())).unwrap();
    let tree = IntervalTree::build(&ds.events);

    let mut deltagraphs = Vec::new();
    for f in [
        DifferentialFunction::Intersection,
        DifferentialFunction::Balanced,
        DifferentialFunction::Mixed { r1: 0.9, r2: 0.1 },
        DifferentialFunction::Empty,
    ] {
        deltagraphs.push(
            DeltaGraph::build(
                &ds.events,
                DeltaGraphConfig::new(90, 3).with_diff_fn(f),
                Arc::new(MemStore::new()),
            )
            .unwrap(),
        );
    }

    for opts in [AttrOptions::all(), AttrOptions::structure_only()] {
        for &t in &times {
            let reference = log.snapshot_at(t, &opts).unwrap();
            assert_eq!(
                copylog.snapshot_at(t, &opts).unwrap(),
                reference,
                "copy+log t={t}"
            );
            assert_eq!(
                tree.snapshot_at(t, &opts).unwrap(),
                reference,
                "interval tree t={t}"
            );
            for dg in &deltagraphs {
                let source = DeltaGraphSource::new(dg);
                assert_eq!(
                    source.snapshot_at(t, &opts).unwrap(),
                    reference,
                    "deltagraph {} t={t}",
                    dg.config().diff_fn.name()
                );
            }
        }
    }
}

#[test]
fn storage_footprints_are_reported_and_ordered_sensibly() {
    let ds = churn_trace(&ChurnConfig::tiny(203));

    let copylog = CopyLog::build(&ds.events, 100, Arc::new(MemStore::new())).unwrap();
    let dg = DeltaGraph::build(
        &ds.events,
        DeltaGraphConfig::new(100, 2).with_diff_fn(DifferentialFunction::Intersection),
        Arc::new(MemStore::new()),
    )
    .unwrap();
    let tree = IntervalTree::build(&ds.events);

    // Copy+Log stores full snapshots and must use more disk than the
    // Intersection DeltaGraph at the same leaf granularity.
    let dg_source = DeltaGraphSource::new(&dg);
    assert!(copylog.storage_bytes() > dg_source.storage_bytes());
    // The interval tree is an in-memory structure.
    assert_eq!(tree.storage_bytes(), 0);
    assert!(tree.memory_bytes() > 0);
}
