//! End-to-end tests of the binary wire protocol and the rendered-response
//! byte cache over the TCP server: mixed text/binary sessions agreeing on
//! results while sharing one snapshot-cache overlay, response-cache hit
//! accounting over the wire, and `APPEND` invalidation (stale bytes are
//! never served after an append).

use std::sync::{Arc, Barrier};
use std::thread;

use historygraph::datagen::toy_trace;
use historygraph::{GraphManager, GraphManagerConfig, SharedGraphManager};
use histql::{Frame, Response};
use server::{serve, Client, ServerConfig, ServerHandle};

fn start(snap_cache: usize, resp_cache: usize) -> (ServerHandle, SharedGraphManager) {
    let gm = GraphManager::build_in_memory(
        &toy_trace().events,
        GraphManagerConfig::default()
            .with_snapshot_cache(snap_cache)
            .with_response_cache(resp_cache),
    )
    .unwrap();
    let shared = SharedGraphManager::new(gm);
    let server = serve(shared.clone(), ServerConfig::default()).unwrap();
    (server, shared)
}

/// Parses `name=value` integers out of a `STATS CACHE` line.
fn field(line: &str, name: &str) -> u64 {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{name}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {name}= in {line:?}"))
}

/// The acceptance scenario: one server, half the sessions in `TEXT`, half in
/// `BINARY`, all issuing the same queries concurrently. Both protocols must
/// return equivalent results (the binary frame re-renders to the text
/// reply, byte for byte) while sharing one snapshot-cache overlay.
#[test]
fn mixed_text_and_binary_sessions_agree_and_share_one_overlay() {
    const PAIRS: usize = 3;
    let (server, shared) = start(16, 16);
    let addr = server.addr();
    let queries = [
        "GET GRAPH AT 6 WITH +node:all+edge:all",
        "GET GRAPHS AT 3, 6",
        "GET GRAPH BETWEEN 2 AND 9",
        "DIFF 6 9",
        "STATS",
    ];

    let barrier = Arc::new(Barrier::new(2 * PAIRS));
    let spawn = |binary: bool| {
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            if binary {
                client.binary().unwrap();
            }
            barrier.wait();
            let mut replies: Vec<Vec<String>> = Vec::new();
            // Two rounds: the second round's point query is guaranteed a
            // response-cache hit (this session's own first round inserted
            // or raced another session's insert of the same entry).
            for q in queries.iter().chain(queries.iter()) {
                let lines = if binary {
                    match client.send_binary(q).unwrap() {
                        Frame::Response(resp) => resp.to_lines(),
                        Frame::Error(msg) => panic!("{q:?} failed: {msg}"),
                    }
                } else {
                    client.send_ok(q).unwrap()
                };
                replies.push(lines);
            }
            // Hold the connection (and its overlay references) until every
            // session is done.
            (client, replies)
        })
    };
    let workers: Vec<_> = (0..2 * PAIRS).map(|i| spawn(i % 2 == 0)).collect();
    let results: Vec<(Client, Vec<Vec<String>>)> =
        workers.into_iter().map(|w| w.join().unwrap()).collect();

    // Every session — text or binary — produced the same rendered replies.
    for (_, replies) in &results {
        assert_eq!(replies, &results[0].1, "protocols must agree");
    }

    // The hot point (t=6, all attrs) is one shared overlay: the cache's own
    // reference plus one per session per acquiring query (two rounds each).
    // Verified through STATS CACHE like the PR 3 e2e, and in-process.
    assert_eq!(
        shared.read().cache_entries().len(),
        shared.read().cache_len()
    );
    // A fresh text-mode probe; the worker sessions stay connected (holding
    // their overlay references) until the assertions are done.
    let mut probe = Client::connect(addr).unwrap();
    let cache = probe.send_ok("STATS CACHE").unwrap();
    let entry = cache
        .iter()
        .find(|l| l.starts_with("C t=6 ") && l.contains("+node:all+edge:all"))
        .expect("t=6 entry");
    assert_eq!(field(entry, "refs"), 2 * (2 * PAIRS as u64) + 1);

    // The response cache (and single-flight table) served the repeats.
    // Racing cold renders may each count a miss (the byte cache
    // deliberately has no double-checked insert — a raced render is still
    // a correct reply), but at least one miss per protocol is certain, the
    // second round hits for everyone, and every point lookup is accounted
    // for: a coalesced follower is served the leader's bytes without ever
    // probing the response cache, so `STATS SERVER`'s coalesced counter
    // covers the remainder.
    let rc = cache
        .iter()
        .find(|l| l.starts_with("RC "))
        .expect("RC line");
    let srv = probe.send_ok("STATS SERVER").unwrap();
    let sf = srv.iter().find(|l| l.starts_with("SF ")).expect("SF line");
    let coalesced = field(sf, "coalesced");
    let (hits, misses) = (field(rc, "hits"), field(rc, "misses"));
    let lookups = 2 * (2 * PAIRS as u64); // two rounds of one point query each
    assert_eq!(hits + misses + coalesced, lookups, "{rc:?} {sf:?}");
    assert!((2..=lookups / 2).contains(&misses), "{rc:?}");
    assert!(
        hits + coalesced >= lookups / 2,
        "second round must hit or coalesce: {rc:?} {sf:?}"
    );
    assert_eq!(field(rc, "entries"), 2, "one entry per protocol: {rc:?}");
    drop(results);
}

#[test]
fn append_invalidates_response_cache_bytes_over_the_wire() {
    let (server, shared) = start(16, 16);
    let mut text = Client::connect(server.addr()).unwrap();
    let mut binary = Client::connect(server.addr()).unwrap();
    binary.binary().unwrap();

    let before_text = text.send_ok("GET GRAPH AT 25").unwrap();
    let before_bin = binary.send_binary_raw("GET GRAPH AT 25").unwrap();
    assert_eq!(shared.read().response_cache_len(), 2);

    // Both replies are now cached; a re-request serves the same bytes.
    assert_eq!(text.send_ok("GET GRAPH AT 25").unwrap(), before_text);
    assert_eq!(
        binary.send_binary_raw("GET GRAPH AT 25").unwrap(),
        before_bin
    );
    assert_eq!(shared.response_cache_stats().hits, 2);

    // The append lands before t=25: every cached reply at/after t=20 goes.
    text.send_ok("APPEND NODE 20 777").unwrap();
    assert_eq!(shared.read().response_cache_len(), 0);

    // Neither protocol is ever served the stale bytes.
    let after_text = text.send_ok("GET GRAPH AT 25").unwrap();
    assert_ne!(after_text, before_text, "stale text bytes were served");
    assert!(after_text.iter().any(|l| l == "N 777"), "{after_text:?}");
    let after_bin = binary.send_binary_raw("GET GRAPH AT 25").unwrap();
    assert_ne!(after_bin, before_bin, "stale binary bytes were served");
    match Frame::from_payload(&after_bin).unwrap() {
        Frame::Response(Response::Graph { graph, .. }) => {
            assert!(graph.has_node(historygraph::tgraph::NodeId(777)));
        }
        other => panic!("expected a graph frame, got {other:?}"),
    }

    // Both cached replies sat at t=25 (at/after the append point), so the
    // append invalidated exactly 2 entries — one per protocol. The
    // re-requests above re-cached them, which counts as insertions, not
    // invalidations.
    assert_eq!(shared.response_cache_stats().invalidations, 2);
    assert_eq!(shared.read().response_cache_len(), 2);
}

/// Disconnect semantics are protocol-independent: a binary session's
/// overlay references are released when it drops, and a server without a
/// response cache behaves exactly as before for binary clients.
#[test]
fn binary_sessions_release_overlays_and_work_without_response_cache() {
    let (server, shared) = start(16, 0);
    {
        let mut client = Client::connect(server.addr()).unwrap();
        client.binary().unwrap();
        let frame = client.send_binary("GET GRAPH AT 6").unwrap();
        assert!(matches!(frame, Frame::Response(Response::Graph { .. })));
        assert_eq!(shared.read().pool().active_overlay_count(), 1);
        let cache = match client.send_binary("STATS CACHE").unwrap() {
            Frame::Response(resp) => resp.to_text(),
            Frame::Error(msg) => panic!("{msg}"),
        };
        assert!(cache.contains("RC entries=0 capacity=0"), "{cache}");
    }
    // The session dropped: only the cache's own reference remains.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let gm = shared.read();
        if !gm.cache_entries().is_empty() && gm.cache_entries()[0].refs == 1 {
            break;
        }
        drop(gm);
        assert!(std::time::Instant::now() < deadline, "refs not released");
        thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(shared.response_cache_stats(), Default::default());
}

/// The determinism guarantee across protocols, including quoting-sensitive
/// content: a node attribute that needs escaping renders identically
/// whether it travelled as text or as codec bytes.
#[test]
fn binary_and_text_replies_are_equivalent_for_hostile_attribute_names() {
    let (server, _shared) = start(16, 16);
    let mut text = Client::connect(server.addr()).unwrap();
    let mut binary = Client::connect(server.addr()).unwrap();
    binary.binary().unwrap();
    text.send_ok("APPEND NODE 30 900").unwrap();
    text.send_ok("APPEND NODEATTR 31 900 \"x\\nEND\\nOK PONG\" 1")
        .unwrap();

    let query = "GET GRAPH AT 31 WITH +node:all";
    let text_lines = text.send_ok(query).unwrap();
    let Frame::Response(resp) = binary.send_binary(query).unwrap() else {
        panic!("expected a response frame")
    };
    assert_eq!(resp.to_lines(), text_lines);
    assert!(!text_lines.iter().any(|l| l == "OK PONG"));
}
