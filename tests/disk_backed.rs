//! The same end-to-end flow, but with the index persisted on disk through the
//! log-structured key–value store (the Kyoto Cabinet stand-in), including a
//! partitioned deployment that fetches partitions in parallel.

use std::sync::Arc;

use historygraph::datagen::{dblp_like, uniform_timepoints, DblpConfig};
use historygraph::deltagraph::{DeltaGraph, DeltaGraphConfig, DifferentialFunction};
use historygraph::kvstore::{KeyValueStore, PartitionedStore};
use historygraph::tgraph::AttrOptions;
use historygraph::{GraphManager, GraphManagerConfig};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("historygraph-it-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn disk_backed_manager_matches_oracle() {
    let ds = dblp_like(&DblpConfig::tiny(301));
    let dir = temp_dir("manager");
    let mut gm = GraphManager::build_on_disk(
        &ds.events,
        GraphManagerConfig::default().with_index(
            DeltaGraphConfig::new(70, 2).with_diff_fn(DifferentialFunction::Intersection),
        ),
        &dir,
    )
    .unwrap();
    assert!(gm.stats().stored_bytes > 0);
    for t in uniform_timepoints(ds.start_time(), ds.end_time(), 6) {
        let h = gm.get_hist_graph(t, "+node:all+edge:all").unwrap();
        assert_eq!(gm.graph(h).to_snapshot(), ds.snapshot_at(t), "t={t}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partitioned_disk_deployment_with_parallel_fetch_matches_oracle() {
    let ds = dblp_like(&DblpConfig::tiny(303));
    let dir = temp_dir("partitioned");
    let store = PartitionedStore::on_disk(&dir, 4).unwrap();
    let store: Arc<dyn KeyValueStore> = Arc::new(store);
    let dg = DeltaGraph::build(
        &ds.events,
        DeltaGraphConfig::new(70, 2)
            .with_partitions(4)
            .with_retrieval_threads(4),
        Arc::clone(&store),
    )
    .unwrap();
    for t in uniform_timepoints(ds.start_time(), ds.end_time(), 5) {
        assert_eq!(
            dg.get_snapshot(t, &AttrOptions::all()).unwrap(),
            ds.snapshot_at(t),
            "t={t}"
        );
    }
    // every partition holds part of the index
    assert!(!store.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
