//! End-to-end integration tests: datasets → index → retrieval → GraphPool →
//! analytics, all through the public facade.

use historygraph::analytics::{connected_components, pagerank, top_k_by_rank, triangle_count};
use historygraph::datagen::{churn_trace, dblp_like, uniform_timepoints, ChurnConfig, DblpConfig};
use historygraph::deltagraph::{DeltaGraphConfig, DifferentialFunction};
use historygraph::tgraph::{AttrOptions, Timestamp};
use historygraph::{GraphManager, GraphManagerConfig};

fn config(leaf: usize, arity: usize, f: DifferentialFunction) -> GraphManagerConfig {
    GraphManagerConfig::default().with_index(DeltaGraphConfig::new(leaf, arity).with_diff_fn(f))
}

#[test]
fn facade_retrieval_matches_oracle_on_growing_trace() {
    let ds = dblp_like(&DblpConfig::tiny(101));
    let mut gm = GraphManager::build_in_memory(
        &ds.events,
        config(60, 2, DifferentialFunction::Intersection),
    )
    .unwrap();
    for t in uniform_timepoints(ds.start_time(), ds.end_time(), 8) {
        let handle = gm.get_hist_graph(t, "+node:all+edge:all").unwrap();
        assert_eq!(gm.graph(handle).to_snapshot(), ds.snapshot_at(t), "t={t}");
    }
}

#[test]
fn facade_retrieval_matches_oracle_on_churn_trace_with_balanced_function() {
    let ds = churn_trace(&ChurnConfig::tiny(103));
    let mut gm =
        GraphManager::build_in_memory(&ds.events, config(90, 3, DifferentialFunction::Balanced))
            .unwrap();
    for t in uniform_timepoints(ds.start_time(), ds.end_time(), 6) {
        let handle = gm.get_hist_graph(t, "+node:all+edge:all").unwrap();
        assert_eq!(gm.graph(handle).to_snapshot(), ds.snapshot_at(t), "t={t}");
    }
}

#[test]
fn multipoint_retrieval_overlays_many_snapshots_compactly() {
    let ds = dblp_like(&DblpConfig::tiny(105));
    let mut gm = GraphManager::build_in_memory(
        &ds.events,
        config(60, 2, DifferentialFunction::Intersection),
    )
    .unwrap();
    let times = uniform_timepoints(ds.start_time(), ds.end_time(), 20);
    let handles = gm.get_hist_graphs(&times, "").unwrap();
    assert_eq!(handles.len(), 20);
    assert_eq!(gm.pool().active_overlay_count(), 20);

    // The union the pool holds is no larger than the largest snapshot (the
    // trace is growing-only), far below the sum of the individual snapshots.
    let disjoint: usize = times
        .iter()
        .map(|&t| ds.snapshot_at(t).approx_memory())
        .sum();
    assert!(gm.pool_memory() < disjoint);

    // Views match the oracle structure-wise.
    for (h, t) in handles.iter().zip(&times) {
        let view = gm.graph(*h);
        let oracle = ds.snapshot_at(*t);
        assert_eq!(view.node_count(), oracle.node_count());
        assert_eq!(view.edge_count(), oracle.edge_count());
    }
}

#[test]
fn analytics_run_on_pool_views_and_plain_snapshots_identically() {
    let ds = dblp_like(&DblpConfig::tiny(107));
    let mut gm = GraphManager::build_in_memory(
        &ds.events,
        config(80, 2, DifferentialFunction::Intersection),
    )
    .unwrap();
    let t = Timestamp(2000);
    let handle = gm.get_hist_graph(t, "").unwrap();
    let view = gm.graph(handle);
    let snapshot = ds
        .snapshot_at(t)
        .project_attrs(&AttrOptions::structure_only());

    // PageRank through the bitmap-filtered view equals PageRank on the
    // standalone snapshot.
    let via_view = pagerank(&view, 15, 0.85);
    let via_snapshot = pagerank(&snapshot, 15, 0.85);
    assert_eq!(via_view.len(), via_snapshot.len());
    let top_view = top_k_by_rank(&via_view, 5);
    let top_snap = top_k_by_rank(&via_snapshot, 5);
    for (a, b) in top_view.iter().zip(&top_snap) {
        assert_eq!(a.0, b.0);
        assert!((a.1 - b.1).abs() < 1e-12);
    }

    // Components and triangles agree as well.
    assert_eq!(
        connected_components(&view).1,
        connected_components(&snapshot).1
    );
    assert_eq!(triangle_count(&view), triangle_count(&snapshot));
}

#[test]
fn live_updates_then_queries_then_cleanup() {
    let ds = dblp_like(&DblpConfig::tiny(109));
    let mut gm = GraphManager::build_in_memory(
        &ds.events,
        config(50, 2, DifferentialFunction::Intersection),
    )
    .unwrap();
    let end = ds.end_time().raw();
    let leaves_before = gm.stats().leaves;
    let mut events = Vec::new();
    for i in 0..120u64 {
        events.push(historygraph::tgraph::Event::add_node(
            end + 1 + i as i64,
            500_000 + i,
        ));
    }
    gm.append_events(events).unwrap();
    assert!(gm.stats().leaves > leaves_before);

    let handle = gm.get_hist_graph(Timestamp(end + 200), "").unwrap();
    assert!(gm
        .graph(handle)
        .has_node(historygraph::tgraph::NodeId(500_119)));

    // Old snapshots do not contain the new nodes.
    let old = gm.get_hist_graph(Timestamp(end), "").unwrap();
    assert!(!gm
        .graph(old)
        .has_node(historygraph::tgraph::NodeId(500_000)));

    gm.release(handle);
    gm.release(old);
    gm.cleanup();
    assert_eq!(gm.pool().active_overlay_count(), 0);
}

#[test]
fn materialization_preserves_results_through_the_facade() {
    let ds = churn_trace(&ChurnConfig::tiny(111));
    let times = uniform_timepoints(ds.start_time(), ds.end_time(), 5);

    let mut plain = GraphManager::build_in_memory(
        &ds.events,
        config(80, 4, DifferentialFunction::Intersection),
    )
    .unwrap();
    let mut materialized = GraphManager::build_in_memory(
        &ds.events,
        config(80, 4, DifferentialFunction::Intersection),
    )
    .unwrap();
    materialized.materialize_root().unwrap();
    materialized.materialize_descendants(2).unwrap();

    for &t in &times {
        let a = plain.get_hist_graph(t, "+node:all+edge:all").unwrap();
        let b = materialized
            .get_hist_graph(t, "+node:all+edge:all")
            .unwrap();
        assert_eq!(
            plain.graph(a).to_snapshot(),
            materialized.graph(b).to_snapshot(),
            "t={t}"
        );
    }
}
