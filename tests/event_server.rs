//! End-to-end tests of the event-driven serving core over the wire:
//! single-flight coalescing proven through `STATS SERVER`, freshness of
//! cached point bytes across an interleaved `APPEND`, and the serving
//! counters themselves.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, PoisonError};

use historygraph::tgraph::{Event, EventList};
use historygraph::{GraphManager, GraphManagerConfig, SharedGraphManager};
use server::{serve, Client, ServerConfig, ServerHandle};

/// Serializes the tests in this binary. Each starts its own server inside
/// this process, and the coalescing proof is timing-sensitive: a sibling
/// test saturating every core can starve its reactor long enough that no
/// followers ever pile up on the leader's flight.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn start(events: &EventList, snap_cache: usize, resp_cache: usize) -> ServerHandle {
    let gm = GraphManager::build_in_memory(
        events,
        GraphManagerConfig::default()
            .with_snapshot_cache(snap_cache)
            .with_response_cache(resp_cache),
    )
    .unwrap();
    serve(
        SharedGraphManager::new(gm),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 32,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Reads one complete text reply (terminated by a lone `END` line).
fn read_reply(sock: &mut TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let n = sock.read(&mut chunk).expect("read reply");
        assert!(n > 0, "server closed mid-reply");
        buf.extend_from_slice(&chunk[..n]);
        if buf.starts_with(b"END\n") || buf.windows(5).any(|w| w == b"\nEND\n") {
            return buf;
        }
    }
}

/// Reads `leaders=` and `coalesced=` off the `SF` line of `STATS SERVER`.
fn flight_counters(probe: &mut Client) -> (u64, u64) {
    let lines = probe.send_ok("STATS SERVER").unwrap();
    let sf = lines
        .iter()
        .find(|l| l.starts_with("SF "))
        .unwrap_or_else(|| panic!("no SF line: {lines:?}"));
    let field = |name: &str| -> u64 {
        sf.split_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {name} on {sf}"))
    };
    (field("leaders"), field("coalesced"))
}

/// Many sessions request the same cold point at once; `STATS SERVER` must
/// show renders being coalesced — more waiters served from a flight than
/// renders led. The snapshot is made large enough that one render spans
/// several scheduler timeslices, so queued followers reliably join the
/// leader's flight; fresh timestamps per round (each its own cache key)
/// and a bounded retry make the proof robust on a single-core host.
#[test]
fn concurrent_sessions_coalesce_renders_over_the_wire() {
    let _serial = serial();
    // Large enough that one render spans several scheduler timeslices
    // even on a single-core host — the proof needs the OS to run the
    // queued follower workers *during* the leader's render, so a render
    // that fits inside one timeslice can sporadically finish before any
    // follower joins the flight.
    const NODES: i64 = 120_000;
    const SESSIONS: usize = 8;
    let events = EventList::from_events(
        (1..=NODES)
            .map(|i| Event::add_node(i, 100_000 + i as u64))
            .collect(),
    );
    let server = start(&events, 64, 64);
    let addr = server.addr();
    let mut probe = Client::connect(addr).unwrap();

    let mut socks: Vec<TcpStream> = (0..SESSIONS)
        .map(|_| TcpStream::connect(addr).unwrap())
        .collect();

    let mut proven = false;
    for round in 0..20 {
        let t = NODES + 1 + round;
        let (leaders_before, coalesced_before) = flight_counters(&mut probe);
        // Pile every request up before reading a single reply: all of
        // them hit the worker queue while the first render is running.
        for sock in &mut socks {
            writeln!(sock, "GET GRAPH AT {t}").unwrap();
            sock.flush().unwrap();
        }
        let replies: Vec<Vec<u8>> = socks.iter_mut().map(read_reply).collect();
        let head = format!("OK GRAPH t={t} nodes={NODES}");
        assert!(
            replies[0].starts_with(head.as_bytes()),
            "bad reply head: {:?}",
            String::from_utf8_lossy(&replies[0][..replies[0].len().min(80)])
        );
        for reply in &replies {
            assert_eq!(
                reply, &replies[0],
                "coalesced sessions must receive identical bytes"
            );
        }
        let (leaders_after, coalesced_after) = flight_counters(&mut probe);
        let leaders = leaders_after - leaders_before;
        let coalesced = coalesced_after - coalesced_before;
        if coalesced >= 2 && coalesced > leaders {
            proven = true;
            break;
        }
    }
    assert!(
        proven,
        "no round served more than one waiter per led render"
    );

    // The serving counters behind the proof are themselves observable.
    let lines = probe.send_ok("STATS SERVER").unwrap();
    let server_line = &lines[0];
    assert!(
        server_line.starts_with("OK SERVER connections="),
        "{lines:?}"
    );
    for field in ["accepted=", "rejected=", "queue_depth=", "workers="] {
        assert!(server_line.contains(field), "{server_line}");
    }
}

/// A point rendered, byte-cached, and re-served must pick up an APPEND
/// that lands beneath it: the epoch guard has to invalidate the cached
/// bytes, and the re-render must show the new node. No stale response is
/// ever acceptable, whichever path (fast path, single-flight, response
/// cache) served the earlier copies.
#[test]
fn append_is_never_served_stale_bytes() {
    let _serial = serial();
    let events = EventList::from_events(
        (1..=60)
            .map(|i| Event::add_node(i, 1000 + i as u64))
            .collect(),
    );
    let server = start(&events, 32, 32);
    let mut client = Client::connect(server.addr()).unwrap();

    // Render and cache the future point: the second request is served
    // from cached bytes (same reply, no matter which tier).
    let first = client.send_ok("GET GRAPH AT 70").unwrap();
    assert!(first[0].starts_with("OK GRAPH t=70 nodes=60"), "{first:?}");
    let cached = client.send_ok("GET GRAPH AT 70").unwrap();
    assert_eq!(cached, first, "cache must reproduce the rendered reply");

    // An append beneath the cached point bumps the epoch...
    let appended = client.send_ok("APPEND NODE 61 9999").unwrap();
    assert!(appended[0].starts_with("OK APPENDED"), "{appended:?}");

    // ...so every subsequent read must see the new node, immediately and
    // on the re-cached path too.
    for _ in 0..3 {
        let fresh = client.send_ok("GET GRAPH AT 70").unwrap();
        assert!(
            fresh[0].starts_with("OK GRAPH t=70 nodes=61"),
            "stale bytes served after APPEND: {fresh:?}"
        );
    }

    // Other sessions see the fresh bytes as well.
    let mut other = Client::connect(server.addr()).unwrap();
    let seen = other.send_ok("GET GRAPH AT 70").unwrap();
    assert!(seen[0].starts_with("OK GRAPH t=70 nodes=61"), "{seen:?}");
}

/// A client that pipelines thousands of requests before reading a single
/// reply exercises the write-side backpressure: the total reply volume is
/// far beyond the outbox high-water mark, so the server must repeatedly
/// stall parsing (reads masked, lines buffered) and resume as the client
/// drains. Every pipelined request still gets its complete reply, in
/// order, and the session stays usable afterwards.
#[test]
fn pipelined_requests_without_reads_are_backpressured_not_dropped() {
    let _serial = serial();
    const REQUESTS: usize = 2000;
    let events = EventList::from_events(
        (1..=60)
            .map(|i| Event::add_node(i, 1000 + i as u64))
            .collect(),
    );
    let server = start(&events, 32, 32);
    let mut sock = TcpStream::connect(server.addr()).unwrap();
    sock.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();

    // ~2000 replies of ~1.3 KiB each (61 attribute lines) ≈ 2.6 MiB —
    // an order of magnitude over the high-water mark plus both socket
    // buffers — while the requests themselves fit in the send buffer, so
    // this write never blocks on the server reading.
    let mut pipelined = Vec::new();
    for _ in 0..REQUESTS {
        pipelined.extend_from_slice(b"GET GRAPH AT 70\n");
    }
    sock.write_all(&pipelined).unwrap();
    sock.flush().unwrap();

    let mut reader = std::io::BufReader::new(sock.try_clone().unwrap());
    let mut heads = 0usize;
    let mut replies = 0usize;
    let mut line = String::new();
    while replies < REQUESTS {
        line.clear();
        let n = std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert!(n > 0, "server closed after {replies} of {REQUESTS} replies");
        if line.starts_with("OK GRAPH t=70 nodes=60") {
            heads += 1;
        } else if line == "END\n" {
            replies += 1;
        }
    }
    assert_eq!(heads, REQUESTS, "every reply must arrive intact");

    // The connection survived the backpressure cycles.
    writeln!(sock, "PING").unwrap();
    line.clear();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    assert_eq!(line, "OK PONG\n");
    line.clear();
    std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
    assert_eq!(line, "END\n");
}
