//! Property test: random IO-fault schedules against the append/roll
//! protocol never corrupt a durable deployment.
//!
//! Each case builds a small durable router, arms one failpoint (random
//! site × fault kind × trigger window, path-scoped to the case's own data
//! directory), then pushes appends through the tail — crossing several
//! shard rolls, so the WAL, segment seal, and manifest rewrite sites are
//! all exercised. Individual appends may fail and the tail may degrade;
//! that is the injected failure doing its job. The invariant is about
//! what's on disk afterwards: with the fault cleared, `open` must succeed,
//! every *acknowledged* append must be visible again at its own timestamp
//! (an unacknowledged append may also survive — a fault after the
//! durability point loses the ack, not the data — but nothing may be
//! half-applied), and the recovered tail must accept new appends. Note a
//! fault in the *roll* path fails a few appends mid-sequence without
//! degrading the WAL tail, so gaps in the survivor set are legitimate.

use std::sync::atomic::{AtomicUsize, Ordering};

use historygraph::{ShardedConfig, ShardedGraphManager, WalSyncPolicy};
use kvstore::faults::{self, FaultKind};
use proptest::prelude::*;
use tgraph::{AttrOptions, Event, EventList, NodeId, Timestamp};

/// Every failpoint site the append/roll protocol crosses.
const SITES: &[&str] = &[
    "wal.create",
    "wal.append",
    "wal.truncate",
    "wal.sync",
    "segment.open",
    "segment.write",
    "segment.sync",
    "segment.rename",
    "segment.dirsync",
    "manifest.open",
    "manifest.write",
    "manifest.sync",
    "manifest.rename",
    "keys.append",
];

const KINDS: &[FaultKind] = &[
    FaultKind::Enospc,
    FaultKind::Eio,
    FaultKind::ShortWrite,
    FaultKind::FsyncFail,
    FaultKind::RenameFail,
    FaultKind::Transient,
];

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #[test]
    fn random_fault_schedules_never_corrupt_recovery(
        site_idx in 0..14usize,
        kind_idx in 0..6usize,
        skip in 0..8u64,
        count in 1..4u64,
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "failpoint-prop-{}-{case}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let scope = dir.to_str().unwrap().to_string();

        // A small healthy deployment: 16 nodes, tail rolls every 8 events,
        // so the appends below cross several seal-and-roll cycles.
        let events = EventList::from_events(
            (1..=16).map(|i| Event::add_node(i, 1000 + i as u64)).collect(),
        );
        let config = ShardedConfig::default().with_shard_events(8);
        let router = ShardedGraphManager::build_durable(
            &events,
            config.clone(),
            &dir,
            WalSyncPolicy::Always,
        )
        .unwrap();

        // One random fault, scoped to this case's directory only.
        faults::arm_scoped(SITES[site_idx], KINDS[kind_idx], skip, Some(count), Some(&scope));

        const APPENDS: u64 = 24;
        let mut acked = Vec::new();
        for i in 0..APPENDS {
            let event = Event::add_node(100 + i as i64, 2000 + i);
            if router.append_event(event).is_ok() {
                acked.push(2000 + i);
            }
        }
        faults::clear(SITES[site_idx]);
        drop(router);

        // With the fault gone, recovery must succeed outright...
        let reopened = ShardedGraphManager::open(&dir, config, WalSyncPolicy::Always)
            .unwrap_or_else(|e| panic!(
                "recovery failed after {}={:?}:skip={skip}:count={count}: {e}",
                SITES[site_idx], KINDS[kind_idx]
            ));
        let snap = reopened
            .snapshot_at(Timestamp(1000), &AttrOptions::all())
            .unwrap();
        // ...every acknowledged append must be there...
        for id in &acked {
            assert!(
                snap.has_node(NodeId(*id)),
                "acked node {id} lost after {}={:?}:skip={skip}:count={count}",
                SITES[site_idx], KINDS[kind_idx]
            );
        }
        // ...at its own timestamp, not just at the end of history (the
        // event was recovered whole, into the right shard)...
        if let Some(&last) = acked.last() {
            let i = last - 2000;
            let at = reopened
                .snapshot_at(Timestamp(100 + i as i64), &AttrOptions::all())
                .unwrap();
            assert!(at.has_node(NodeId(last)), "acked node {last} misplaced in time");
        }
        // ...nothing outside the attempted sequence was conjured up...
        for id in snap.node_ids() {
            assert!(
                (1001..=1016).contains(&id.0) || (2000..2000 + APPENDS).contains(&id.0),
                "unexpected node {} after {}={:?}:skip={skip}:count={count}",
                id.0, SITES[site_idx], KINDS[kind_idx]
            );
        }
        // ...and the recovered tail serves writes again.
        reopened
            .append_event(Event::add_node(900, 3000 + case as u64))
            .unwrap_or_else(|e| panic!(
                "recovered tail refused a fresh append after {}={:?}: {e}",
                SITES[site_idx], KINDS[kind_idx]
            ));
        drop(reopened);
        std::fs::remove_dir_all(&dir).ok();
    }
}
