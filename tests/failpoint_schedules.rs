//! Property test: random IO-fault schedules against the append/roll
//! protocol never corrupt a durable deployment.
//!
//! Each case builds a small durable router, arms one failpoint (random
//! site × fault kind × trigger window, path-scoped to the case's own data
//! directory), then pushes appends through the tail — crossing several
//! shard rolls, so the WAL, segment seal, and manifest rewrite sites are
//! all exercised. Individual appends may fail and the tail may degrade;
//! that is the injected failure doing its job. The invariant is about
//! what's on disk afterwards: with the fault cleared, `open` must succeed,
//! every *acknowledged* append must be visible again at its own timestamp
//! (an unacknowledged append may also survive — a fault after the
//! durability point loses the ack, not the data — but nothing may be
//! half-applied), and the recovered tail must accept new appends. Note a
//! fault in the *roll* path fails a few appends mid-sequence without
//! degrading the WAL tail, so gaps in the survivor set are legitimate.

use std::sync::atomic::{AtomicUsize, Ordering};

use historygraph::{ShardedConfig, ShardedGraphManager, WalSyncPolicy};
use kvstore::faults::{self, FaultKind};
use proptest::prelude::*;
use tgraph::{AttrOptions, Event, EventList, NodeId, Timestamp};

/// Every failpoint site the append/roll protocol crosses.
const SITES: &[&str] = &[
    "wal.create",
    "wal.append",
    "wal.truncate",
    "wal.sync",
    "segment.open",
    "segment.write",
    "segment.sync",
    "segment.rename",
    "segment.dirsync",
    "manifest.open",
    "manifest.write",
    "manifest.sync",
    "manifest.rename",
    "keys.append",
];

const KINDS: &[FaultKind] = &[
    FaultKind::Enospc,
    FaultKind::Eio,
    FaultKind::ShortWrite,
    FaultKind::FsyncFail,
    FaultKind::RenameFail,
    FaultKind::Transient,
];

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #[test]
    fn random_fault_schedules_never_corrupt_recovery(
        site_idx in 0..14usize,
        kind_idx in 0..6usize,
        skip in 0..8u64,
        count in 1..4u64,
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "failpoint-prop-{}-{case}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let scope = dir.to_str().unwrap().to_string();

        // A small healthy deployment: 16 nodes, tail rolls every 8 events,
        // so the appends below cross several seal-and-roll cycles.
        let events = EventList::from_events(
            (1..=16).map(|i| Event::add_node(i, 1000 + i as u64)).collect(),
        );
        let config = ShardedConfig::default().with_shard_events(8);
        let router = ShardedGraphManager::build_durable(
            &events,
            config.clone(),
            &dir,
            WalSyncPolicy::Always,
        )
        .unwrap();

        // One random fault, scoped to this case's directory only.
        faults::arm_scoped(SITES[site_idx], KINDS[kind_idx], skip, Some(count), Some(&scope));

        const APPENDS: u64 = 24;
        let mut acked = Vec::new();
        for i in 0..APPENDS {
            let event = Event::add_node(100 + i as i64, 2000 + i);
            if router.append_event(event).is_ok() {
                acked.push(2000 + i);
            }
        }
        faults::clear(SITES[site_idx]);
        drop(router);

        // With the fault gone, recovery must succeed outright...
        let reopened = ShardedGraphManager::open(&dir, config, WalSyncPolicy::Always)
            .unwrap_or_else(|e| panic!(
                "recovery failed after {}={:?}:skip={skip}:count={count}: {e}",
                SITES[site_idx], KINDS[kind_idx]
            ));
        let snap = reopened
            .snapshot_at(Timestamp(1000), &AttrOptions::all())
            .unwrap();
        // ...every acknowledged append must be there...
        for id in &acked {
            assert!(
                snap.has_node(NodeId(*id)),
                "acked node {id} lost after {}={:?}:skip={skip}:count={count}",
                SITES[site_idx], KINDS[kind_idx]
            );
        }
        // ...at its own timestamp, not just at the end of history (the
        // event was recovered whole, into the right shard)...
        if let Some(&last) = acked.last() {
            let i = last - 2000;
            let at = reopened
                .snapshot_at(Timestamp(100 + i as i64), &AttrOptions::all())
                .unwrap();
            assert!(at.has_node(NodeId(last)), "acked node {last} misplaced in time");
        }
        // ...nothing outside the attempted sequence was conjured up...
        for id in snap.node_ids() {
            assert!(
                (1001..=1016).contains(&id.0) || (2000..2000 + APPENDS).contains(&id.0),
                "unexpected node {} after {}={:?}:skip={skip}:count={count}",
                id.0, SITES[site_idx], KINDS[kind_idx]
            );
        }
        // ...and the recovered tail serves writes again.
        reopened
            .append_event(Event::add_node(900, 3000 + case as u64))
            .unwrap_or_else(|e| panic!(
                "recovered tail refused a fresh append after {}={:?}: {e}",
                SITES[site_idx], KINDS[kind_idx]
            ));
        drop(reopened);
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    /// The batch analogue: random fault schedules against `APPEND BATCH`
    /// never tear a batch. Each batch is written write-ahead as a unit and
    /// rolled back to its start offset on failure, so recovery must see
    /// every batch all-or-nothing: an acked batch fully visible, a failed
    /// batch either fully absent or (when the fault struck after the
    /// durability point, losing only the ack) fully present — never a
    /// prefix.
    #[test]
    fn random_fault_schedules_never_tear_batches(
        site_idx in 0..14usize,
        kind_idx in 0..6usize,
        skip in 0..8u64,
        count in 1..4u64,
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "failpoint-batch-prop-{}-{case}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let scope = dir.to_str().unwrap().to_string();

        let events = EventList::from_events(
            (1..=16).map(|i| Event::add_node(i, 1000 + i as u64)).collect(),
        );
        let config = ShardedConfig::default().with_shard_events(8);
        let router = ShardedGraphManager::build_durable(
            &events,
            config.clone(),
            &dir,
            WalSyncPolicy::Always,
        )
        .unwrap();

        faults::arm_scoped(SITES[site_idx], KINDS[kind_idx], skip, Some(count), Some(&scope));

        // 8 batches of 3 events each, crossing at least one tail roll.
        const BATCHES: u64 = 8;
        const PER: u64 = 3;
        let mut acked = Vec::new();
        for b in 0..BATCHES {
            let t = 100 + b as i64 * 10;
            let batch: Vec<Event> = (0..PER)
                .map(|k| Event::add_node(t + k as i64, 2000 + b * 100 + k))
                .collect();
            if router.append_batch(batch).is_ok() {
                acked.push(b);
            }
        }
        faults::clear(SITES[site_idx]);
        drop(router);

        let reopened = ShardedGraphManager::open(&dir, config, WalSyncPolicy::Always)
            .unwrap_or_else(|e| panic!(
                "recovery failed after {}={:?}:skip={skip}:count={count}: {e}",
                SITES[site_idx], KINDS[kind_idx]
            ));
        let snap = reopened
            .snapshot_at(Timestamp(1000), &AttrOptions::all())
            .unwrap();
        for b in 0..BATCHES {
            let present: Vec<bool> = (0..PER)
                .map(|k| snap.has_node(NodeId(2000 + b * 100 + k)))
                .collect();
            let whole = present.iter().all(|&p| p);
            let none = present.iter().all(|&p| !p);
            assert!(
                whole || none,
                "batch {b} recovered torn ({present:?}) after {}={:?}:skip={skip}:count={count}",
                SITES[site_idx], KINDS[kind_idx]
            );
            if acked.contains(&b) {
                assert!(
                    whole,
                    "acked batch {b} lost after {}={:?}:skip={skip}:count={count}",
                    SITES[site_idx], KINDS[kind_idx]
                );
            }
        }
        drop(reopened);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Transient faults inside one batch count **one retry per batch attempt**,
/// not one per event: the whole batch is truncated back to its start offset
/// and rewritten, so `storage_retries_total` moves by the number of rewrite
/// rounds, never by the batch's width.
#[test]
fn transient_batch_fault_counts_one_retry_not_one_per_event() {
    let dir = std::env::temp_dir().join(format!("failpoint-batch-retry-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let scope = dir.to_str().unwrap().to_string();

    let events = EventList::from_events(
        (1..=4)
            .map(|i| Event::add_node(i, 1000 + i as u64))
            .collect(),
    );
    let config = ShardedConfig::default();
    let router =
        ShardedGraphManager::build_durable(&events, config, &dir, WalSyncPolicy::Always).unwrap();

    // One transient fault striking the middle record of a 3-event batch.
    faults::arm_scoped("wal.append", FaultKind::Transient, 1, Some(1), Some(&scope));
    let batch: Vec<Event> = (0..3)
        .map(|k| Event::add_node(100 + k, 2000 + k as u64))
        .collect();
    let outcome = router.append_batch(batch).unwrap();
    faults::clear("wal.append");
    assert_eq!(outcome.applied, 3);

    let health = router.health_info();
    assert_eq!(
        health.storage_retries, 1,
        "one rewrite round must count one retry, not one per event"
    );
    assert!(!health.degraded, "a recovered transient must not degrade");
    // The retried batch is fully visible.
    let snap = router
        .snapshot_at(Timestamp(200), &AttrOptions::all())
        .unwrap();
    for k in 0..3u64 {
        assert!(
            snap.has_node(NodeId(2000 + k)),
            "node {k} missing after retry"
        );
    }
    drop(router);
    std::fs::remove_dir_all(&dir).ok();
}

/// A fatal mid-batch fault degrades the tail exactly once and leaves it
/// serving the pre-batch state: no event of the failed batch is visible at
/// any timestamp, and recovery (with the fault cleared) agrees.
#[test]
fn fatal_mid_batch_fault_leaves_pre_batch_state() {
    let dir = std::env::temp_dir().join(format!("failpoint-batch-fatal-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let scope = dir.to_str().unwrap().to_string();

    let events = EventList::from_events(
        (1..=4)
            .map(|i| Event::add_node(i, 1000 + i as u64))
            .collect(),
    );
    let config = ShardedConfig::default();
    let router =
        ShardedGraphManager::build_durable(&events, config.clone(), &dir, WalSyncPolicy::Always)
            .unwrap();

    // EIO striking the middle record of the batch: fatal, no retry.
    faults::arm_scoped(
        "wal.append",
        FaultKind::Eio,
        1,
        Some(u64::MAX),
        Some(&scope),
    );
    let batch: Vec<Event> = (0..3)
        .map(|k| Event::add_node(100 + k, 2000 + k as u64))
        .collect();
    let err = router.append_batch(batch).unwrap_err();
    assert!(err.to_string().contains("read-only"), "{err}");
    faults::clear("wal.append");

    let health = router.health_info();
    assert!(health.degraded, "fatal batch fault must degrade the tail");
    assert_eq!(health.storage_retries, 0, "a fatal fault is not a retry");
    // The live tail serves the pre-batch state — no prefix of the batch.
    let snap = router
        .snapshot_at(Timestamp(200), &AttrOptions::all())
        .unwrap();
    for k in 0..3u64 {
        assert!(!snap.has_node(NodeId(2000 + k)), "batch prefix leaked live");
    }
    drop(router);

    // And so does recovery.
    let reopened = ShardedGraphManager::open(&dir, config, WalSyncPolicy::Always).unwrap();
    let snap = reopened
        .snapshot_at(Timestamp(200), &AttrOptions::all())
        .unwrap();
    for k in 0..3u64 {
        assert!(
            !snap.has_node(NodeId(2000 + k)),
            "batch prefix survived recovery"
        );
    }
    drop(reopened);
    std::fs::remove_dir_all(&dir).ok();
}
