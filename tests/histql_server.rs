//! End-to-end test of the `histql` + `server` subsystem: a server over a
//! churn trace, driven by concurrent client sessions issuing every query
//! verb, with each deterministic response verified against the same query
//! executed directly against a `GraphManager`.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use historygraph::datagen::{churn_trace, uniform_timepoints, ChurnConfig};
use historygraph::tgraph::Timestamp;
use historygraph::{GraphManager, GraphManagerConfig, SharedGraphManager};
use histql::{Executor, Response};
use server::{serve, Client, ServerConfig};

const SESSIONS: usize = 8;

struct Setup {
    events: historygraph::tgraph::EventList,
    times: Vec<Timestamp>,
    nodes: Vec<u64>,
    append_t: i64,
    step: i64,
}

fn setup() -> Setup {
    let ds = churn_trace(&ChurnConfig::tiny(7));
    let times = uniform_timepoints(ds.start_time(), ds.end_time(), 5);
    // One existing node per session, queried via the key-lookup table.
    let mid = ds.snapshot_at(times[2]);
    let mut nodes: Vec<u64> = mid.node_ids().map(|n| n.raw()).collect();
    nodes.sort_unstable();
    nodes.truncate(SESSIONS);
    assert_eq!(nodes.len(), SESSIONS, "trace too small for the test");
    let span = times[3].raw() - times[0].raw();
    Setup {
        append_t: ds.end_time().raw() + 1,
        events: ds.events,
        times,
        nodes,
        step: (span / 8).max(1),
    }
}

fn build_manager(events: &historygraph::tgraph::EventList) -> GraphManager {
    GraphManager::build_in_memory(events, GraphManagerConfig::default()).unwrap()
}

/// The deterministic workload of one session: every retrieval verb.
fn workload(s: &Setup, i: usize) -> Vec<String> {
    let (t0, t1, t2, t3) = (
        s.times[0].raw(),
        s.times[1].raw(),
        s.times[2].raw(),
        s.times[3].raw(),
    );
    let key = format!("k{i}");
    let node = s.nodes[i];
    let step = s.step;
    vec![
        format!("BIND {key} {node}"),
        format!("GET GRAPH AT {t1} WITH +node:all+edge:all"),
        format!("GET GRAPHS AT {t0}, {t2}"),
        format!("GET GRAPH BETWEEN {t0} AND {t3}"),
        format!("DIFF {t2} {t0}"),
        format!("GET GRAPH MATCHING {t0} AND NOT {t2} WITH +node:all"),
        format!("NODE {key} AT {t2}"),
        format!("HISTORY NODE {key} FROM {t0} TO {t3} STEP {step}"),
    ]
}

#[test]
fn concurrent_sessions_match_direct_execution() {
    let s = Arc::new(setup());
    let gm = build_manager(&s.events);
    let shared = SharedGraphManager::new(gm);
    let server = serve(
        shared.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: SESSIONS + 4,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Phase 1: SESSIONS concurrent clients, each issuing every verb (the
    // deterministic retrievals plus PING, APPEND, STATS) simultaneously.
    let barrier = Arc::new(Barrier::new(SESSIONS));
    let sessions: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let s = Arc::clone(&s);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                assert_eq!(client.send_ok("PING").unwrap(), vec!["OK PONG"]);
                let mut recorded = Vec::new();
                for request in workload(&s, i) {
                    let lines = client.send_ok(&request).unwrap();
                    recorded.push((request, lines));
                }
                // Live updates while the other sessions read history.
                let append = format!("APPEND NODE {} {}", s.append_t, 5000 + i);
                assert_eq!(
                    client.send_ok(&append).unwrap(),
                    vec![format!("OK APPENDED t={}", s.append_t)]
                );
                // STATS is exercised concurrently (content verified after
                // quiescence, once all appends have landed).
                let stats = client.send_ok("STATS").unwrap();
                assert!(stats[0].starts_with("OK STATS leaves="), "{stats:?}");
                recorded
            })
        })
        .collect();
    let recorded: Vec<Vec<(String, Vec<String>)>> =
        sessions.into_iter().map(|t| t.join().unwrap()).collect();

    // Phase 2: the reference. A direct GraphManager over the same trace,
    // with the same appends applied, executed through a local Executor
    // (no server, no sockets).
    let mut direct_gm = build_manager(&s.events);
    for i in 0..SESSIONS {
        direct_gm
            .append_event(historygraph::tgraph::Event::add_node(
                s.append_t,
                5000 + i as u64,
            ))
            .unwrap();
    }
    let direct = SharedGraphManager::new(direct_gm);
    let mut reference = Executor::new(direct.clone());
    for (i, session) in recorded.iter().enumerate() {
        for (request, lines) in session {
            let expected = reference
                .execute_line(request)
                .unwrap_or_else(|e| panic!("direct {request:?}: {e}"))
                .to_lines();
            assert_eq!(lines, &expected, "session {i}, request {request:?}");
        }
    }

    // The point query must also match the raw GraphManager API (not just
    // the executor): overlay through get_hist_graph and serialize the view.
    let t1 = s.times[1];
    let handle = direct
        .write()
        .get_hist_graph(t1, "+node:all+edge:all")
        .unwrap();
    let raw_snapshot = direct.read().graph(handle).to_snapshot();
    let raw_lines = Response::Graph {
        t: t1,
        graph: std::sync::Arc::new(raw_snapshot),
    }
    .to_lines();
    let from_server = recorded[0]
        .iter()
        .find(|(req, _)| req.starts_with("GET GRAPH AT"))
        .map(|(_, lines)| lines.clone())
        .unwrap();
    assert_eq!(from_server, raw_lines);

    // Phase 3: quiescent verification of the append-dependent state. A
    // fresh client sees all 8 appended nodes and the same index stats as
    // the reference.
    let mut client = Client::connect(addr).unwrap();
    let graph_now = client
        .send_ok(&format!("GET GRAPH AT {}", s.append_t))
        .unwrap();
    for i in 0..SESSIONS {
        let line = format!("N {}", 5000 + i);
        assert!(graph_now.contains(&line), "missing {line}");
    }
    let stats_server = client.send_ok("STATS").unwrap();
    let stats_direct = reference.execute_line("STATS").unwrap().to_lines();
    assert_eq!(stats_server, stats_direct);
    drop(client);
}

#[test]
fn server_pool_returns_to_baseline_after_disconnects() {
    let s = setup();
    let shared = SharedGraphManager::new(build_manager(&s.events));
    let server = serve(shared.clone(), ServerConfig::default()).unwrap();
    let t = s.times[2].raw();
    {
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        a.send_ok(&format!("GET GRAPH AT {t}")).unwrap();
        b.send_ok(&format!("GET GRAPHS AT {}, {t}", s.times[0].raw()))
            .unwrap();
        assert_eq!(shared.read().pool().active_overlay_count(), 3);
    }
    // Both clients dropped: their sessions release every overlay, so only
    // the current graph remains active.
    let deadline = Instant::now() + Duration::from_secs(5);
    while shared.read().pool().active_graphs().len() != 1 {
        assert!(
            Instant::now() < deadline,
            "pool still holds {} active graphs",
            shared.read().pool().active_graphs().len()
        );
        thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(shared.read().pool().active_overlay_count(), 0);
}
