//! End-to-end tests of the observability layer over the wire: both serving
//! cores must expose the same metric catalog through `STATS METRICS`, the
//! binary protocol, and the HTTP `GET /metrics` scrape endpoint; counters
//! must be monotonic across scrapes; and the slow-query ring must capture
//! over-threshold requests only.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

use historygraph::tgraph::{Event, EventList};
use historygraph::{GraphManagerConfig, ShardedConfig, ShardedGraphManager};
use histql::{Frame, MetricValue, Response};
use server::{serve_sharded, serve_sharded_threaded, Client, ServerConfig, ServerHandle};

/// 60 nodes appearing at t = 1..=60: deep enough that 4 equi-width shards
/// each own a predictable time slice (shard 0 holds the earliest quarter).
fn linear_trace() -> EventList {
    EventList::from_events(
        (1..=60)
            .map(|i| Event::add_node(i, 1000 + i as u64))
            .collect(),
    )
}

/// Starts a 4-shard server on the requested core, with the slow-query
/// threshold and (optionally) an HTTP scrape listener on an OS-picked port.
fn start(threaded: bool, slow_query_us: u64, scrape: bool) -> ServerHandle {
    let router = ShardedGraphManager::build_in_memory(
        &linear_trace(),
        ShardedConfig::default().with_shards(4).with_manager(
            GraphManagerConfig::default()
                .with_snapshot_cache(32)
                .with_response_cache(32),
        ),
    )
    .unwrap();
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_connections: 32,
        slow_query_us,
        metrics_addr: scrape.then(|| "127.0.0.1:0".into()),
        ..Default::default()
    };
    if threaded {
        serve_sharded_threaded(router, config)
    } else {
        serve_sharded(router, config)
    }
    .unwrap()
}

/// Issues a mixed workload touching every shard, with extra traffic on the
/// earliest shard so per-shard skew is visible in the counters.
fn mixed_workload(server: &ServerHandle) {
    let mut c = Client::connect(server.addr()).unwrap();
    for t in [5, 20, 35, 50] {
        c.send_ok(&format!("GET GRAPH AT {t} WITH +node:all"))
            .unwrap();
    }
    for _ in 0..8 {
        c.send_ok("GET GRAPH AT 5 WITH +node:all").unwrap();
    }
    c.send_ok("GET GRAPHS AT 10, 40").unwrap();
    // Interval-style queries must stay within one shard's time range.
    c.send_ok("DIFF 12 5").unwrap();
    // Unique node per call so a server seeing two workloads accepts both.
    static APPEND_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = APPEND_SEQ.fetch_add(1, Ordering::Relaxed);
    c.send_ok(&format!("APPEND NODE {} {}", 61 + seq, 9999 + seq))
        .unwrap();
    c.send_ok("STATS").unwrap();
    c.quit();
}

/// All metric names off a `STATS METRICS` reply, in reply (sorted) order.
fn metric_names(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .filter_map(|l| l.strip_prefix("M "))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(str::to_string)
        .collect()
}

/// One `name=value` field off the `M <metric> ...` line for `metric`.
fn metric_field(lines: &[String], metric: &str, name: &str) -> u64 {
    let prefix = format!("M {metric} ");
    lines
        .iter()
        .find(|l| l.starts_with(&prefix))
        .and_then(|line| {
            line.split_whitespace()
                .find_map(|kv| kv.strip_prefix(&format!("{name}=")))
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {name} on metric {metric}"))
}

/// Issues one HTTP/1.0 request against the scrape endpoint and returns the
/// raw response bytes (the server closes the connection after replying).
fn scrape(server: &ServerHandle, path: &str) -> String {
    let addr = server.metrics_addr().expect("scrape endpoint bound");
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .unwrap();
    let mut reply = Vec::new();
    sock.read_to_end(&mut reply).unwrap();
    String::from_utf8(reply).unwrap()
}

/// Both cores must expose the identical metric catalog — same names, same
/// kinds — with non-zero per-verb counts after a mixed workload, including
/// the per-shard skew counters.
#[test]
fn both_cores_report_the_same_metric_catalog_with_traffic() {
    let mut catalogs: Vec<Vec<String>> = Vec::new();
    for threaded in [false, true] {
        let server = start(threaded, 0, false);
        mixed_workload(&server);
        let mut probe = Client::connect(server.addr()).unwrap();
        let lines = probe.send_ok("STATS METRICS").unwrap();
        assert!(
            lines[0].starts_with("OK METRICS entries="),
            "{:?}",
            lines[0]
        );

        // Per-verb latency saw the traffic.
        assert!(metric_field(&lines, "verb_us_get_graph_at", "count") >= 12);
        assert!(metric_field(&lines, "verb_us_append", "count") >= 1);
        assert!(metric_field(&lines, "verb_us_diff", "count") >= 1);

        // Per-shard skew: shard 0 (owning t=5) absorbed the hot-point
        // burst, so its query counter dominates the later shards'.
        let shard0 = metric_field(&lines, "shard0_queries_total", "value");
        let shard3 = metric_field(&lines, "shard3_queries_total", "value");
        assert!(
            shard0 > shard3 && shard0 >= 9,
            "shard0={shard0} shard3={shard3}"
        );
        assert!(metric_field(&lines, "shard3_appends_total", "value") >= 1);

        let names = metric_names(&lines);
        assert!(
            names.windows(2).all(|w| w[0] < w[1]),
            "names must be sorted and unique"
        );
        catalogs.push(names);
    }
    assert_eq!(
        catalogs[0], catalogs[1],
        "event and threaded cores must expose identical metric names"
    );
}

/// Counters and histogram counts only ever grow between two scrapes of the
/// same live server.
#[test]
fn metrics_are_monotonic_across_scrapes() {
    let server = start(false, 0, false);
    mixed_workload(&server);
    let mut probe = Client::connect(server.addr()).unwrap();
    let before = probe.send_ok("STATS METRICS").unwrap();
    mixed_workload(&server);
    let after = probe.send_ok("STATS METRICS").unwrap();

    let count_before = metric_field(&before, "verb_us_get_graph_at", "count");
    let count_after = metric_field(&after, "verb_us_get_graph_at", "count");
    assert!(
        count_after >= count_before + 12,
        "before={count_before} after={count_after}"
    );
    for name in metric_names(&before) {
        // Gauges (live connections, queue depth) may move either way;
        // counters and histogram counts must not regress.
        let field = if before
            .iter()
            .any(|l| l.starts_with(&format!("M {name} hist")))
        {
            "count"
        } else if before
            .iter()
            .any(|l| l.starts_with(&format!("M {name} counter")))
        {
            "value"
        } else {
            continue;
        };
        assert!(
            metric_field(&after, &name, field) >= metric_field(&before, &name, field),
            "{name} regressed"
        );
    }
}

/// The slow-query ring captures requests only when the threshold is set
/// and exceeded: a 1µs threshold catches real traffic, an absurdly high
/// one (and the off default) catches nothing.
#[test]
fn slow_query_log_captures_only_over_threshold_requests() {
    let server = start(false, 1, false);
    mixed_workload(&server);
    let mut probe = Client::connect(server.addr()).unwrap();
    let lines = probe.send_ok("STATS SLOW").unwrap();
    let entries: usize = lines[0]
        .strip_prefix("OK SLOW entries=")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("bad header: {:?}", lines[0]));
    assert!(entries > 0, "1µs threshold must capture the workload");
    assert_eq!(lines.len(), entries + 1);
    for line in &lines[1..] {
        assert!(line.starts_with("Q verb="), "{line}");
        assert!(line.contains(" total_us="), "{line}");
    }

    // Far-above-traffic threshold: nothing is slow enough to capture.
    let server = start(false, u64::MAX, false);
    mixed_workload(&server);
    let mut probe = Client::connect(server.addr()).unwrap();
    let lines = probe.send_ok("STATS SLOW").unwrap();
    assert_eq!(lines[0], "OK SLOW entries=0");

    // Default (0): capture is off entirely.
    let server = start(false, 0, false);
    mixed_workload(&server);
    let mut probe = Client::connect(server.addr()).unwrap();
    let lines = probe.send_ok("STATS SLOW").unwrap();
    assert_eq!(lines[0], "OK SLOW entries=0");
}

/// The HTTP scrape endpoint speaks Prometheus plaintext on both cores:
/// correct framing, every `STATS METRICS` name present under the `histql_`
/// prefix, and a 404 (without rendering) for any other path.
#[test]
fn http_scrape_endpoint_serves_the_catalog_on_both_cores() {
    for threaded in [false, true] {
        let server = start(threaded, 0, true);
        mixed_workload(&server);

        let reply = scrape(&server, "/metrics");
        let (head, body) = reply.split_once("\r\n\r\n").expect("header separator");
        assert!(reply.starts_with("HTTP/1.0 200 OK\r\n"), "{head}");
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.parse().ok())
            .expect("Content-Length header");
        assert_eq!(length, body.len(), "advertised length matches the body");
        assert!(
            body.contains("# TYPE histql_verb_us_get_graph_at summary"),
            "missing verb summary (threaded={threaded})"
        );
        assert!(body.contains("histql_verb_us_get_graph_at{quantile=\"0.99\"}"));
        assert!(body.contains("histql_verb_us_get_graph_at_count"));

        // Same catalog as the in-band verb, name for name.
        let mut probe = Client::connect(server.addr()).unwrap();
        let lines = probe.send_ok("STATS METRICS").unwrap();
        for name in metric_names(&lines) {
            assert!(
                body.contains(&format!("histql_{name}")),
                "scrape missing {name} (threaded={threaded})"
            );
        }

        let miss = scrape(&server, "/anything-else");
        assert!(miss.starts_with("HTTP/1.0 404"), "{miss}");
    }
}

/// `STATS METRICS` over the binary protocol round-trips the same catalog
/// as typed data (tag 15), with live per-verb histogram counts.
#[test]
fn binary_stats_metrics_roundtrips_typed_entries() {
    let server = start(false, 0, false);
    mixed_workload(&server);
    let mut probe = Client::connect(server.addr()).unwrap();
    probe.binary().unwrap();
    let frame = probe.send_binary("STATS METRICS").unwrap();
    let Frame::Response(Response::Metrics { entries }) = frame else {
        panic!("expected a Metrics response, got {frame:?}");
    };
    assert!(!entries.is_empty());
    let verb = entries
        .iter()
        .find(|e| e.name == "verb_us_get_graph_at")
        .expect("per-verb histogram present");
    match &verb.value {
        MetricValue::Histogram(h) => assert!(h.count >= 12, "count={}", h.count),
        other => panic!("expected a histogram, got {other:?}"),
    }
}
