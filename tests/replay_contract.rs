//! The §3.1 replay contract, demonstrated and enforced.
//!
//! A `DeleteEdge` event carries only its endpoints and a `DeleteNode` only
//! its id, so backward replay can restore the *element* but not the
//! attributes (or, for nodes, incident edges) it carried when deleted.
//! Streams that delete still-attributed elements therefore produce
//! **layout-dependent snapshots**: whether a query happens to replay
//! forward from one materialized state or backward from another changes
//! the answer. The first test reproduces that hazard against the raw
//! DeltaGraph index; the rest prove the append boundary (`GraphManager`
//! with [`ContractPolicy`]) eliminates it — by injecting clearing events
//! (`Normalize`) or refusing the stream (`Reject`).

use std::sync::Arc;

use historygraph::deltagraph::{DeltaGraph, DeltaGraphConfig};
use historygraph::kvstore::MemStore;
use historygraph::tgraph::{AttrOptions, AttrValue, Event, EventList, Snapshot, Timestamp};
use historygraph::{ContractPolicy, GraphManager, GraphManagerConfig};
use proptest::prelude::*;

/// A hand-built ill-formed stream: an edge and a node are deleted while
/// both still carry an attribute (and the node an incident edge history).
/// Every individual event is valid; only the §3.1 well-formedness contract
/// is violated.
fn ill_formed_stream() -> Vec<Event> {
    vec![
        Event::add_node(1, 10u64),
        Event::add_node(2, 11u64),
        Event::add_edge(3, 1u64, 10u64, 11u64),
        Event::set_node_attr(4, 10u64, "name", None, Some(AttrValue::Str("x".into()))),
        Event::set_edge_attr(5, 1u64, "w", None, Some(AttrValue::Int(7))),
        // Ill-formed: edge 1 still carries w=7, node 10 still carries name=x.
        Event::delete_edge(6, 1u64, 10u64, 11u64),
        Event::delete_node(7, 10u64),
        Event::add_node(8, 12u64),
    ]
}

fn build_raw(events: &EventList, leaf_size: usize) -> DeltaGraph {
    DeltaGraph::build(
        events,
        DeltaGraphConfig::new(leaf_size, 2),
        Arc::new(MemStore::new()),
    )
    .unwrap()
}

fn manager_with_leaf(leaf_size: usize) -> GraphManagerConfig {
    GraphManagerConfig::default().with_index(DeltaGraphConfig::new(leaf_size, 2))
}

/// Retrieves the full-attribute snapshot at `t` through the manager's
/// query path (which picks forward or backward replay by cost, i.e. by
/// layout).
fn manager_snapshot(gm: &mut GraphManager, t: i64) -> Snapshot {
    let id = gm
        .get_hist_graph(Timestamp(t), "+node:all+edge:all")
        .unwrap();
    let snap = gm.graph(id).to_snapshot();
    gm.release(id);
    snap
}

/// Regression: the pre-fix hazard, reproduced against the raw index by
/// appending the ill-formed stream below the boundary (exactly what the
/// old append path did). With `leaf_size = 1` every event folds into a
/// leaf and the point query at t=5 is answered *backward* across the
/// ill-formed deletes, re-adding node 10 and edge 1 bare; with
/// `leaf_size = 64` the events stay in the recent eventlist and the same
/// query replays *forward*, preserving `name=x` and `w=7`. Same stream,
/// two layouts, two different answers.
#[test]
fn raw_ill_formed_stream_yields_layout_dependent_snapshots() {
    let seed = EventList::from_events(vec![Event::add_node(0, 999u64)]);
    let opts = AttrOptions::all();
    let snapshot_at_5 = |leaf_size: usize| {
        let mut dg = build_raw(&seed, leaf_size);
        // Bypass the manager boundary: raw, unnormalized appends.
        dg.append_events(ill_formed_stream()).unwrap();
        dg.get_snapshot(Timestamp(5), &opts).unwrap()
    };
    let folded = snapshot_at_5(1);
    let recent = snapshot_at_5(64);
    assert_ne!(
        folded, recent,
        "expected the raw index to be layout-dependent over an ill-formed \
         stream; if this now agrees, the regression guard below is moot"
    );
    // The forward-replay oracle: the recent-eventlist layout matches it,
    // the folded layout silently lost both attributes.
    let mut oracle = Snapshot::new();
    oracle.apply_forward(&Event::add_node(0, 999u64)).unwrap();
    oracle
        .apply_events_forward(ill_formed_stream().iter().take_while(|ev| ev.time.0 <= 5))
        .unwrap();
    let oracle = oracle.project_attrs(&opts);
    assert_eq!(recent, oracle);
    assert_ne!(
        folded, oracle,
        "backward replay should have lost attributes"
    );
}

/// The fix: the same stream pushed through the append boundary is
/// normalized (clearing events injected inside the batch), and the two
/// layouts that disagreed above now answer every point query identically.
#[test]
fn boundary_normalization_restores_layout_independence() {
    let seed = EventList::from_events(vec![Event::add_node(0, 999u64)]);
    let mut fine = GraphManager::build_in_memory(&seed, manager_with_leaf(2)).unwrap();
    let mut coarse = GraphManager::build_in_memory(&seed, manager_with_leaf(8)).unwrap();

    for gm in [&mut fine, &mut coarse] {
        let outcome = gm.append_batch(ill_formed_stream()).unwrap();
        assert!(
            outcome.normalized >= 2,
            "boundary should inject clearing events for the attributed \
             edge and node, got {outcome:?}"
        );
        assert!(outcome.applied > ill_formed_stream().len() - 2);
    }
    for t in 0..=9 {
        assert_eq!(
            manager_snapshot(&mut fine, t),
            manager_snapshot(&mut coarse, t),
            "layouts disagree at t={t} even through the boundary"
        );
    }
}

/// Under [`ContractPolicy::Reject`] the same stream is refused with a
/// precise error and no partial state becomes visible.
#[test]
fn reject_policy_refuses_ill_formed_streams_atomically() {
    let seed = EventList::from_events(vec![Event::add_node(0, 999u64)]);
    let mut gm = GraphManager::build_in_memory(
        &seed,
        manager_with_leaf(2).with_contract_policy(ContractPolicy::Reject),
    )
    .unwrap();
    let err = gm
        .append_batch(ill_formed_stream())
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("§3.1") || err.contains("attribute") || err.contains("clear"),
        "rejection should cite the contract: {err}"
    );
    assert_eq!(gm.append_epoch(), 0, "rejected batch bumped the epoch");
    let snap = manager_snapshot(&mut gm, 9);
    assert_eq!(
        (snap.node_count(), snap.edge_count()),
        (1, 0),
        "rejected batch leaked events"
    );
}

/// The churn generator claims to emit §3.1-well-formed streams (attribute
/// clears and incident-edge deletes before every delete). Audit that claim
/// against the boundary itself: under [`ContractPolicy::Reject`] — which
/// refuses any delete still carrying state — the whole trace must be
/// accepted with zero injected clearing events.
#[test]
fn churn_trace_passes_the_reject_boundary_unmodified() {
    use historygraph::datagen::{churn_trace, ChurnConfig};
    let trace = churn_trace(&ChurnConfig::tiny(41));
    let events = trace.events.events();
    let seed = EventList::from_events(events[..1].to_vec());
    let mut gm = GraphManager::build_in_memory(
        &seed,
        manager_with_leaf(64).with_contract_policy(ContractPolicy::Reject),
    )
    .unwrap();
    let outcome = gm.append_batch(events[1..].to_vec()).unwrap();
    assert_eq!(outcome.applied, events.len() - 1);
    assert_eq!(
        outcome.normalized, 0,
        "churn trace violated §3.1: the boundary had to normalize it"
    );
}

/// Tiny deterministic generator state: which elements are alive and which
/// still carry attributes, so every generated event is individually valid
/// while deletes are free to violate §3.1.
#[derive(Default)]
struct StreamGen {
    nodes: Vec<u64>,
    edges: Vec<(u64, u64, u64)>,
    next_node: u64,
    next_edge: u64,
}

impl StreamGen {
    fn step(&mut self, t: i64, choice: u64) -> Event {
        let nodes = self.nodes.len();
        let edges = self.edges.len();
        // Weight the menu by what is currently possible.
        match choice % 5 {
            _ if nodes == 0 => {
                self.next_node += 1;
                self.nodes.push(self.next_node);
                Event::add_node(t, self.next_node)
            }
            1 if nodes >= 2 => {
                self.next_edge += 1;
                let src = self.nodes[(choice / 7) as usize % nodes];
                let dst = self.nodes[(choice / 11) as usize % nodes];
                self.edges.push((self.next_edge, src, dst));
                Event::add_edge(t, self.next_edge, src, dst)
            }
            2 => {
                let node = self.nodes[(choice / 7) as usize % nodes];
                Event::set_node_attr(t, node, "a", None, Some(AttrValue::Int(choice as i64)))
            }
            3 if edges > 0 => {
                let (edge, src, dst) = self.edges.swap_remove((choice / 7) as usize % edges);
                // Deliberately no attribute clear first: ill-formed whenever
                // the edge was attributed.
                Event::delete_edge(t, edge, src, dst)
            }
            4 if nodes >= 2 => {
                let idx = (choice / 7) as usize % nodes;
                let node = self.nodes.swap_remove(idx);
                self.edges.retain(|&(_, s, d)| s != node && d != node);
                // Deliberately no clears: ill-formed whenever the node was
                // attributed or still had live incident edges.
                Event::delete_node(t, node)
            }
            _ => {
                self.next_node += 1;
                self.nodes.push(self.next_node);
                Event::add_node(t, self.next_node)
            }
        }
    }
}

proptest! {
    /// For random valid-but-possibly-ill-formed streams pushed through the
    /// boundary in random batch sizes, two managers with different index
    /// layouts report the same normalization count and answer every point
    /// query identically — the contract makes snapshots a function of the
    /// stream alone, never of the layout.
    #[test]
    fn prop_boundary_makes_snapshots_layout_independent(
        seed in 0u64..64,
        len in 4usize..28,
        batch_len in 1usize..6,
    ) {
        let base = EventList::from_events(vec![Event::add_node(0, 999u64)]);
        let mut fine = GraphManager::build_in_memory(&base, manager_with_leaf(1)).unwrap();
        let mut coarse = GraphManager::build_in_memory(&base, manager_with_leaf(64)).unwrap();

        // Deterministic xorshift-style choice stream off the seed.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut gen = StreamGen::default();
        let stream: Vec<Event> = (0..len).map(|i| gen.step(1 + i as i64, rng())).collect();

        for chunk in stream.chunks(batch_len) {
            let a = fine.append_batch(chunk.to_vec()).unwrap();
            let b = coarse.append_batch(chunk.to_vec()).unwrap();
            assert_eq!(a.applied, b.applied);
            assert_eq!(a.normalized, b.normalized);
        }
        for t in 0..=(len as i64 + 1) {
            assert_eq!(
                manager_snapshot(&mut fine, t),
                manager_snapshot(&mut coarse, t),
                "layouts disagree at t={t}"
            );
        }
    }
}
