//! End-to-end tests of the time-range-sharded serving layer: concurrent
//! sessions appending to the tail shard while others read historical points
//! on other shards, multipoint fan-out ordering, per-shard error surfacing,
//! response-cache survival across ingest, and tail rolling — all over the
//! wire.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;

use historygraph::tgraph::{Event, EventList};
use historygraph::{GraphManagerConfig, ShardedConfig, ShardedGraphManager};
use server::{serve_sharded, Client, ServerConfig, ServerHandle};

/// 60 nodes appearing at t = 1..=60, so every snapshot's node count equals
/// its timestamp and shard contents are predictable.
fn linear_trace() -> EventList {
    EventList::from_events(
        (1..=60)
            .map(|i| Event::add_node(i, 1000 + i as u64))
            .collect(),
    )
}

fn start(shards: usize, shard_events: usize) -> (ServerHandle, ShardedGraphManager) {
    let router = ShardedGraphManager::build_in_memory(
        &linear_trace(),
        ShardedConfig::default()
            .with_shards(shards)
            .with_shard_events(shard_events)
            .with_manager(
                GraphManagerConfig::default()
                    .with_snapshot_cache(32)
                    .with_response_cache(32),
            ),
    )
    .unwrap();
    let handle = serve_sharded(
        router.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 32,
            ..Default::default()
        },
    )
    .unwrap();
    (handle, router)
}

/// Reads one `name=value` field off a `STATS SHARDS` line.
fn shard_field(lines: &[String], shard: usize, name: &str) -> u64 {
    let prefix = format!("S {shard} ");
    lines
        .iter()
        .find(|l| l.starts_with(&prefix))
        .and_then(|line| {
            line.split_whitespace()
                .find_map(|kv| kv.strip_prefix(&format!("{name}=")))
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {name} on shard {shard}: {lines:?}"))
}

#[test]
fn concurrent_tail_appends_never_lose_events_and_leave_history_alone() {
    let (server, router) = start(3, 0);
    let addr = server.addr();
    const WRITERS: usize = 4;
    const APPENDS_PER_WRITER: i64 = 25;

    // Prime a historical point on shard 0 so its caches hold entries the
    // ingest must not touch: first request misses and inserts, second hits.
    let mut prober = Client::connect(addr).unwrap();
    let before_reply = prober.send_ok("GET GRAPH AT 15 WITH +node:all").unwrap();
    prober.send_ok("GET GRAPH AT 15 WITH +node:all").unwrap();
    let before = prober.send_ok("STATS SHARDS").unwrap();
    assert_eq!(shard_field(&before, 0, "cache_entries"), 1);
    assert_eq!(shard_field(&before, 0, "rc_entries"), 1);
    let tail_events_before = shard_field(&before, 2, "events");

    // Appends draw increasing times from one shared counter. Two writers'
    // events can still reach the tail out of order — the tail's chronology
    // check rejects those, and that rejection must be the *only* failure
    // mode; every acknowledged append must survive.
    let next_t = Arc::new(AtomicI64::new(61));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let next_t = Arc::clone(&next_t);
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut appended = 0u64;
                for i in 0..APPENDS_PER_WRITER {
                    let t = next_t.fetch_add(1, Ordering::Relaxed);
                    let node = 10_000 + w as i64 * 1_000 + i;
                    let lines = c.send(&format!("APPEND NODE {t} {node}")).unwrap();
                    if lines[0].starts_with("OK APPENDED") {
                        appended += 1;
                    } else {
                        assert!(
                            lines[0].contains("appended after"),
                            "only chronology races may reject an append: {lines:?}"
                        );
                    }
                }
                appended
            })
        })
        .collect();
    let readers: Vec<_> = [15i64, 45]
        .into_iter()
        .map(|t| {
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..40 {
                    let lines = c.send(&format!("GET GRAPH AT {t}")).unwrap();
                    assert!(
                        lines[0].starts_with(&format!("OK GRAPH t={t} nodes={t}")),
                        "historical point changed under ingest: {lines:?}"
                    );
                }
            })
        })
        .collect();
    let appended: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    for r in readers {
        r.join().unwrap();
    }
    assert!(
        appended > 0 && appended <= (WRITERS as i64 * APPENDS_PER_WRITER) as u64,
        "{appended}"
    );

    // No lost events: the final snapshot holds the full history plus every
    // append that was acknowledged.
    let final_t = next_t.load(Ordering::Relaxed);
    let lines = prober.send_ok(&format!("GET GRAPH AT {final_t}")).unwrap();
    assert!(
        lines[0].starts_with(&format!("OK GRAPH t={final_t} nodes={}", 60 + appended)),
        "{:?}",
        &lines[0]
    );

    // Chronology errors surface per shard: a write into a historical
    // shard's range is refused by the router...
    let err = prober.send("APPEND NODE 5 99999").unwrap();
    assert!(err[0].starts_with("ERR"), "{err:?}");
    assert!(err[0].contains("immutable"), "{err:?}");
    // ...and an out-of-order write inside the tail's range is refused by
    // the tail shard's own chronology check.
    let err = prober.send("APPEND NODE 62 99999").unwrap();
    assert!(err[0].starts_with("ERR"), "{err:?}");
    assert!(err[0].contains("appended after"), "{err:?}");

    // The historical shard's caches survived the ingest: entries intact
    // (the readers added their own for other attr options), zero
    // invalidations, and the cached reply bytes are still served verbatim.
    let after = prober.send_ok("STATS SHARDS").unwrap();
    assert!(shard_field(&after, 0, "cache_entries") >= 1);
    assert_eq!(shard_field(&after, 0, "cache_invalidations"), 0);
    assert!(shard_field(&after, 0, "rc_entries") >= 1);
    let rc_hits_before = shard_field(&after, 0, "rc_hits");
    let after_reply = prober.send_ok("GET GRAPH AT 15 WITH +node:all").unwrap();
    assert_eq!(after_reply, before_reply, "cached historical reply changed");
    let after2 = prober.send_ok("STATS SHARDS").unwrap();
    assert_eq!(shard_field(&after2, 0, "rc_hits"), rc_hits_before + 1);

    // Sanity: the tail did absorb the ingest.
    assert_eq!(router.shard_count(), 3);
    let tail_events = shard_field(&after2, 2, "events");
    assert_eq!(tail_events, tail_events_before + appended);
}

#[test]
fn multipoint_fanout_returns_request_order_even_across_shards() {
    let (server, _router) = start(3, 0);
    let mut client = Client::connect(server.addr()).unwrap();
    // Times deliberately interleave the shards (2, 0, 1, 0, 2, 1), so any
    // completion-order reassembly would scramble them; repeat to give a
    // racy implementation every chance to fail.
    let times = [55i64, 5, 35, 15, 45, 25];
    for _ in 0..10 {
        let lines = client
            .send_ok("GET GRAPHS AT 55, 5, 35, 15, 45, 25")
            .unwrap();
        assert!(lines[0].starts_with("OK GRAPHS count=6"), "{:?}", &lines[0]);
        let headers: Vec<&String> = lines.iter().filter(|l| l.starts_with("GRAPH t=")).collect();
        assert_eq!(headers.len(), times.len());
        for (t, header) in times.iter().zip(headers) {
            assert!(
                header.starts_with(&format!("GRAPH t={t} nodes={t} ")),
                "snapshots out of request order: {header}"
            );
        }
        client.send_ok("RELEASE ALL").unwrap();
    }
}

#[test]
fn tail_rolls_over_the_wire_and_history_stays_queryable() {
    let (server, router) = start(2, 10);
    let mut client = Client::connect(server.addr()).unwrap();
    let shards_before = router.shard_count();
    // The built tail is already over budget, so the first strictly-later
    // append rolls a fresh shard; keep appending through another roll.
    for i in 0..25 {
        let t = 100 + i;
        let lines = client
            .send(&format!("APPEND NODE {t} {}", 20_000 + i))
            .unwrap();
        assert!(lines[0].starts_with("OK APPENDED"), "{lines:?}");
    }
    let lines = client.send_ok("STATS SHARDS").unwrap();
    let count: usize = lines[0]
        .strip_prefix("OK SHARDS count=")
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        count > shards_before,
        "tail should have rolled: {count} shards"
    );
    assert_eq!(router.shard_count(), count);
    // Every era of the history answers correctly: built trace, pre-roll
    // appends, and the final state.
    let g = client.send_ok("GET GRAPH AT 30").unwrap();
    assert!(g[0].starts_with("OK GRAPH t=30 nodes=30"), "{:?}", &g[0]);
    let g = client.send_ok("GET GRAPH AT 105").unwrap();
    assert!(g[0].starts_with("OK GRAPH t=105 nodes=66"), "{:?}", &g[0]);
    let g = client.send_ok("GET GRAPH AT 124").unwrap();
    assert!(g[0].starts_with("OK GRAPH t=124 nodes=85"), "{:?}", &g[0]);
}

#[test]
fn disconnect_releases_overlays_on_every_shard() {
    let (server, router) = start(3, 0);
    {
        let mut client = Client::connect(server.addr()).unwrap();
        client.send_ok("GET GRAPHS AT 10, 30, 50").unwrap();
        let overlays: usize = router.shard_infos().iter().map(|i| i.overlays).sum();
        assert_eq!(overlays, 3);
    }
    // The client dropped; every shard's session reference must go. Cached
    // overlays stay warm holding exactly the cache's own reference.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let leaked = router.shard_handles().unwrap().iter().any(|shared| {
            let gm = shared.read();
            gm.cache_entries().iter().any(|e| e.refs > 1)
        });
        if !leaked {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "session references were not released on every shard"
        );
        thread::sleep(std::time::Duration::from_millis(10));
    }
}
