//! End-to-end tests of the shared snapshot cache over the TCP server:
//! cross-session overlay sharing (observed through `STATS CACHE` reference
//! counts), invalidation on `APPEND`, and reference release on client
//! disconnect.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use historygraph::datagen::toy_trace;
use historygraph::{GraphManager, GraphManagerConfig, SharedGraphManager};
use server::{serve, Client, ServerConfig, ServerHandle};

fn start(cache: usize) -> (ServerHandle, SharedGraphManager) {
    let gm = GraphManager::build_in_memory(
        &toy_trace().events,
        GraphManagerConfig::default().with_snapshot_cache(cache),
    )
    .unwrap();
    let shared = SharedGraphManager::new(gm);
    let server = serve(shared.clone(), ServerConfig::default()).unwrap();
    (server, shared)
}

/// Parses `name=value` integers out of a `STATS CACHE` line.
fn field(line: &str, name: &str) -> u64 {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{name}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {name}= in {line:?}"))
}

/// Waits until the pool's overlay count settles to `expected` (disconnect
/// cleanup runs on the connection thread, slightly after the client drops).
fn await_overlays(shared: &SharedGraphManager, expected: usize) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let count = shared.read().pool().active_overlay_count();
        if count == expected {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "pool stuck at {count} overlays (want {expected})"
        );
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn concurrent_sessions_at_one_instant_share_one_overlay() {
    const CLIENTS: usize = 6;
    let (server, shared) = start(16);
    let addr = server.addr();

    // CLIENTS concurrent sessions all retrieving the same (t, opts) at once:
    // whatever the interleaving, they must end up sharing one overlay, and
    // every response must be byte-identical.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                let lines = client
                    .send_ok("GET GRAPH AT 6 WITH +node:all+edge:all")
                    .unwrap();
                // Hold the connection (and thus the session's reference)
                // until every response is in.
                (client, lines)
            })
        })
        .collect();
    let mut results: Vec<(Client, Vec<String>)> =
        workers.into_iter().map(|w| w.join().unwrap()).collect();
    for (_, lines) in &results {
        assert_eq!(lines, &results[0].1, "responses must be identical");
    }

    // Exactly one overlay exists, with one reference per session plus the
    // cache's own — observed both in-process and over the wire.
    assert_eq!(shared.read().pool().active_overlay_count(), 1);
    let (probe, _) = &mut results[0];
    let cache = probe.send_ok("STATS CACHE").unwrap();
    assert_eq!(field(&cache[0], "entries"), 1);
    assert_eq!(field(&cache[0], "overlays"), 1);
    assert_eq!(field(&cache[0], "misses"), 1, "{:?}", cache[0]);
    assert_eq!(
        field(&cache[0], "hits"),
        CLIENTS as u64 - 1,
        "{:?}",
        cache[0]
    );
    let entry = cache
        .iter()
        .find(|l| l.starts_with("C t=6 "))
        .expect("entry line");
    assert_eq!(field(entry, "refs"), CLIENTS as u64 + 1);

    // Disconnecting clients decrements the shared refcount one by one.
    let (probe, _) = results.pop().unwrap();
    drop(results); // CLIENTS-1 sessions gone
    let mut probe = probe;
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let cache = probe.send_ok("STATS CACHE").unwrap();
        let entry = cache.iter().find(|l| l.starts_with("C t=6 ")).unwrap();
        let refs = field(entry, "refs");
        if refs == 2 {
            break; // this probe's session + the cache
        }
        assert!(Instant::now() < deadline, "refs stuck at {refs}");
        thread::sleep(Duration::from_millis(10));
    }
    drop(probe);
    // All sessions gone: the cache alone keeps the overlay warm.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let cache_ref_only = {
            let gm = shared.read();
            let overlay = gm.cache_entries()[0].overlay;
            gm.pool().refcount(overlay) == Some(1)
        };
        if cache_ref_only {
            break;
        }
        assert!(Instant::now() < deadline, "cache ref not restored");
        thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(shared.read().pool().active_overlay_count(), 1);
}

#[test]
fn append_invalidates_entries_at_or_after_the_event_time() {
    let (server, shared) = start(16);
    let mut client = Client::connect(server.addr()).unwrap();
    client.send_ok("GET GRAPH AT 6").unwrap();
    client.send_ok("GET GRAPH AT 25").unwrap();
    let cache = client.send_ok("STATS CACHE").unwrap();
    assert_eq!(field(&cache[0], "entries"), 2);

    client.send_ok("APPEND NODE 20 777").unwrap();
    let cache = client.send_ok("STATS CACHE").unwrap();
    assert_eq!(field(&cache[0], "entries"), 1, "{:?}", cache);
    assert!(
        cache.iter().any(|l| l.starts_with("C t=6 ")),
        "the entry before the append point must survive: {cache:?}"
    );
    assert_eq!(field(&cache[0], "invalidations"), 1);

    // A re-retrieval at 25 sees the appended node and re-caches.
    let graph = client.send_ok("GET GRAPH AT 25").unwrap();
    assert!(graph.iter().any(|l| l == "N 777"), "{graph:?}");
    let cache = client.send_ok("STATS CACHE").unwrap();
    assert_eq!(field(&cache[0], "entries"), 2);
    assert_eq!(shared.cache_stats().invalidations, 1);
}

#[test]
fn release_all_drops_only_the_issuing_sessions_references() {
    let (server, shared) = start(16);
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    a.send_ok("GET GRAPH AT 6").unwrap();
    b.send_ok("GET GRAPH AT 6").unwrap();
    let cache = a.send_ok("STATS CACHE").unwrap();
    let entry = cache.iter().find(|l| l.starts_with("C t=6 ")).unwrap();
    assert_eq!(field(entry, "refs"), 3); // cache + a + b

    assert_eq!(a.send_ok("RELEASE ALL").unwrap(), vec!["OK RELEASED 1"]);
    let cache = b.send_ok("STATS CACHE").unwrap();
    let entry = cache.iter().find(|l| l.starts_with("C t=6 ")).unwrap();
    assert_eq!(field(entry, "refs"), 2); // cache + b

    // b still reads its graph through the shared overlay
    let lines = b.send_ok("GET GRAPH AT 6").unwrap();
    assert!(lines[0].starts_with("OK GRAPH t=6"));
    drop(a);
    drop(b);
    await_overlays(&shared, 1); // the cached overlay outlives both sessions
}

#[test]
fn cache_disabled_server_behaves_like_before() {
    let (server, shared) = start(0);
    {
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        a.send_ok("GET GRAPH AT 6").unwrap();
        b.send_ok("GET GRAPH AT 6").unwrap();
        // no sharing without the cache: one overlay per session
        assert_eq!(shared.read().pool().active_overlay_count(), 2);
        let cache = a.send_ok("STATS CACHE").unwrap();
        assert_eq!(field(&cache[0], "capacity"), 0);
        assert_eq!(field(&cache[0], "hits"), 0);
        assert_eq!(field(&cache[0], "misses"), 0);
    }
    await_overlays(&shared, 0);
}
